"""Chaos tests: injected faults against the batch service.

These drive the production fault points in :mod:`repro.testing.faults`
-- a worker segfaulting mid-job, the disk filling under the result
cache, a SIGKILL landing on a half-finished batch -- and assert the
service's contract: the batch always completes with one sound-or-
explicit-failure result per job, and a killed batch resumes from its
journal with identical verdicts.
"""

import json
import os
import signal
import subprocess
import sys
import time

import pytest

from repro.obs import events
from repro.service import transport
from repro.service.cache import ResultCache
from repro.service.job import AnalysisJob
from repro.service.scheduler import run_batch
from repro.testing import faults

OK_SOURCE = "x = [0, 4]; y = x + 1; assert(y <= 5);"
OK2_SOURCE = "z = 3; assert(z == 3);"


@pytest.fixture(autouse=True)
def disarm_faults():
    yield
    faults.clear()


class TestFaultRegistry:
    def test_fire_only_when_armed(self):
        assert not faults.fire("worker_kill")
        with faults.injected("worker_kill"):
            assert faults.fire("worker_kill")
        assert not faults.fire("worker_kill")

    def test_arg_restricts_firing(self):
        with faults.injected("worker_kill", "victim"):
            assert not faults.fire("worker_kill", "bystander")
            assert faults.fire("worker_kill", "victim")

    def test_env_roundtrip(self):
        faults.inject("cache_enospc")
        faults.inject("worker_kill", "victim")
        try:
            spec = os.environ["REPRO_FAULTS"]
            assert faults._parse_env(spec) == {"cache_enospc": None,
                                               "worker_kill": "victim"}
        finally:
            faults.clear()
        assert "REPRO_FAULTS" not in os.environ


def _shm_entries():
    try:
        return [e for e in os.listdir("/dev/shm")
                if e.startswith(transport.SHM_PREFIX)]
    except OSError:
        return []


class TestWorkerKill:
    def test_killed_worker_reported_dead_siblings_unharmed(self):
        jobs = [AnalysisJob(source=OK_SOURCE, label="bystander"),
                AnalysisJob(source=OK2_SOURCE, label="victim")]
        # Pool mode only: the fault calls os._exit, which inline would
        # take down the test process.  Forked workers inherit the armed
        # registry, so every retry dies the same way.
        with faults.injected("worker_kill", "victim"):
            batch = run_batch(jobs, workers=2, retries=1)
        bystander, victim = batch.results
        assert bystander.ok
        assert victim.outcome == "error"
        assert "worker died" in victim.error
        assert victim.attempts == 2  # first run + one retry, both killed
        assert _shm_entries() == []  # killed workers leak no segments

    def test_killed_worker_segment_swept_not_leaked(self):
        """A worker SIGKILLed *inside the send window* -- after creating
        its shared-memory segment, before the parent attaches -- must
        not leak the segment.  The fault kills the worker mid-job, so
        we plant the segment the worker would have left (its
        deterministic name) and assert the scheduler's reap path sweeps
        it."""
        from multiprocessing import resource_tracker, shared_memory

        if not os.path.isdir("/dev/shm"):
            pytest.skip("no POSIX shm directory on this platform")
        jobs = [AnalysisJob(source=OK_SOURCE, label="bystander"),
                AnalysisJob(source=OK2_SOURCE, label="victim")]

        planted = []
        # Plant segments for every worker pid the batch reaps: wrap the
        # sweep itself, seeding each pid with a leftover segment first.
        real_sweep = transport.sweep_worker

        def seeded_sweep(worker_pid, parent_pid=None):
            seg = shared_memory.SharedMemory(
                name=transport.segment_name(os.getpid(), worker_pid),
                create=True, size=64)
            resource_tracker.unregister(seg._name, "shared_memory")
            seg.close()
            planted.append(seg.name)
            return real_sweep(worker_pid, parent_pid)

        transport.sweep_worker = seeded_sweep
        try:
            with faults.injected("worker_kill", "victim"):
                batch = run_batch(jobs, workers=2, retries=1)
        finally:
            transport.sweep_worker = real_sweep
        assert batch.results[1].outcome == "error"
        assert len(planted) >= 2  # one per killed attempt
        assert _shm_entries() == []  # every planted segment was swept

    def test_batch_start_sweeps_orphans_of_dead_batches(self):
        from multiprocessing import resource_tracker, shared_memory

        if not os.path.isdir("/dev/shm"):
            pytest.skip("no POSIX shm directory on this platform")
        seg = shared_memory.SharedMemory(
            name=transport.segment_name(999_997, 123), create=True, size=64)
        resource_tracker.unregister(seg._name, "shared_memory")
        seg.close()
        assert _shm_entries() != []
        with events.quiet_stderr():
            run_batch([AnalysisJob(source=OK2_SOURCE, label="a")], workers=1)
        assert _shm_entries() == []


class TestCacheEnospc:
    def test_full_disk_disables_cache_batch_survives(self, tmp_path):
        cache = ResultCache(str(tmp_path / "cache"))
        jobs = [AnalysisJob(source=OK_SOURCE, label="a"),
                AnalysisJob(source=OK2_SOURCE, label="b")]
        with faults.injected("cache_enospc"):
            with events.capture() as caught:
                batch = run_batch(jobs, workers=1, cache=cache)
        # The analysis is unharmed; only persistence is lost.
        assert batch.all_ok
        assert cache.disabled
        assert cache.write_errors == 1  # disabled after the first failure
        disabled = [e for e in caught if e.name == "result_cache_disabled"]
        assert len(disabled) == 1
        assert disabled[0].level == events.WARNING
        assert "No space left" in disabled[0].fields["error"]
        assert cache.get(jobs[0].key()) is None

    def test_reads_keep_working_after_write_failure(self, tmp_path):
        cache = ResultCache(str(tmp_path / "cache"))
        job = AnalysisJob(source=OK_SOURCE, label="a")
        run_batch([job], workers=1, cache=cache)  # warm normally
        with faults.injected("cache_enospc"):
            with events.quiet_stderr():
                run_batch([job, AnalysisJob(source=OK2_SOURCE, label="b")],
                          workers=1, cache=cache)
        assert cache.disabled
        assert cache.get(job.key()) is not None


def _heavy_source(nprocs: int, nvars: int = 12) -> str:
    """Many small procedures: seconds of work, killable mid-batch."""
    procs = []
    for p in range(nprocs):
        decls = "; ".join(f"v{k} = [0, {k + 1}]" for k in range(nvars))
        bumps = " ".join(f"v{k} = v{k} + 1;" for k in range(nvars))
        procs.append(f"proc p{p} {{ {decls}; i = 0;"
                     f" while (i < 50) {{ i = i + 1; {bumps} }}"
                     f" assert (i >= 50); }}")
    return "\n".join(procs)


@pytest.mark.slow
class TestSigkillResume:
    def _cli(self, *args, env):
        return subprocess.run([sys.executable, "-m", "repro", *args],
                              capture_output=True, text=True, timeout=300,
                              env=env)

    def _verdicts(self, report_path):
        report = json.loads(report_path.read_text())
        return {job["label"]: (job["outcome"],
                               sorted((proc, cond, bool(ok))
                                      for proc, cond, ok in job["checks"]))
                for job in report["jobs"]}

    def test_resume_after_sigkill_matches_clean_run(self, tmp_path):
        """The ISSUE acceptance bar: SIGKILL a jobs=4 batch mid-run,
        ``--resume`` it, and the final verdicts must match a clean
        single-worker run exactly (with journaled jobs not re-run)."""
        files = []
        for idx in range(4):
            path = tmp_path / f"prog{idx}.mini"
            # One quick job (journaled almost immediately -- the kill
            # signal) and three slow ones still running when it lands.
            path.write_text(OK_SOURCE if idx == 0 else _heavy_source(120))
            files.append(str(path))
        journal = tmp_path / "batch.jsonl"
        env = dict(os.environ)
        env["REPRO_CACHE_DIR"] = str(tmp_path / "cache")

        victim = subprocess.Popen(
            [sys.executable, "-m", "repro", "batch", *files, "--jobs", "4",
             "--no-cache", "--journal", str(journal)],
            stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL, env=env)
        try:
            deadline = time.monotonic() + 120
            while time.monotonic() < deadline:
                if journal.exists() and journal.read_text().count("\n") >= 1:
                    break
                if victim.poll() is not None:
                    break  # finished before we could kill it; still valid
                time.sleep(0.02)
            else:
                pytest.fail("journal never gained a record")
        finally:
            if victim.poll() is None:
                os.kill(victim.pid, signal.SIGKILL)
            victim.wait()
        journaled_before_resume = journal.read_text().count("\n")
        assert journaled_before_resume >= 1

        resumed_report = tmp_path / "resumed.json"
        resumed = self._cli("batch", *files, "--jobs", "4", "--no-cache",
                            "--journal", str(journal), "--resume",
                            "--json", str(resumed_report), env=env)
        assert resumed.returncode == 0, resumed.stderr
        if victim.returncode != 0:  # genuinely killed mid-run
            assert f"{journaled_before_resume} job(s) resumed" \
                in resumed.stdout

        clean_report = tmp_path / "clean.json"
        clean = self._cli("batch", *files, "--jobs", "1", "--no-cache",
                          "--no-journal", "--json", str(clean_report),
                          env=env)
        assert clean.returncode == 0, clean.stderr

        assert self._verdicts(resumed_report) == self._verdicts(clean_report)


class TestServeSigterm:
    """SIGTERM against the analysis daemon: no socket file, no shm."""

    def _spawn_server(self, tmp_path):
        sock = tmp_path / "serve.sock"
        env = dict(os.environ)
        env["REPRO_CACHE_DIR"] = str(tmp_path / "cache")
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve",
             "--socket", str(sock)],
            stdout=subprocess.PIPE, stderr=subprocess.DEVNULL,
            text=True, env=env)
        try:
            from repro.serve.client import wait_ready

            wait_ready(str(sock), timeout=30)
        except Exception:
            proc.kill()
            proc.wait()
            raise
        return proc, sock

    def test_sigterm_mid_request_cleans_socket_and_shm(self, tmp_path):
        import socket as socketlib

        proc, sock = self._spawn_server(tmp_path)
        conn = socketlib.socket(socketlib.AF_UNIX, socketlib.SOCK_STREAM)
        try:
            conn.connect(str(sock))
            # Half a frame: the handler thread is now blocked mid-read,
            # which is as mid-request as a kill can land.
            conn.sendall((64).to_bytes(4, "big") + b"partial")
            os.kill(proc.pid, signal.SIGTERM)
            assert proc.wait(timeout=30) == 0
        finally:
            conn.close()
            if proc.poll() is None:
                proc.kill()
                proc.wait()
        assert not sock.exists()  # no stale socket file
        assert _shm_entries() == []  # no leaked segments

    def test_restart_reclaims_stale_socket_file(self, tmp_path):
        """A crashed server's leftover socket file must not block the
        next start (the stale-probe path), but a *live* server must."""
        proc, sock = self._spawn_server(tmp_path)
        try:
            # Second server on the same path: refused while live.
            env = dict(os.environ)
            env["REPRO_CACHE_DIR"] = str(tmp_path / "cache")
            dup = subprocess.run(
                [sys.executable, "-m", "repro", "serve",
                 "--socket", str(sock)],
                capture_output=True, text=True, timeout=60, env=env)
            assert dup.returncode == 2
            assert "another server is live" in dup.stderr
        finally:
            os.kill(proc.pid, signal.SIGKILL)  # crash: no cleanup runs
            proc.wait()
        assert sock.exists()  # SIGKILL left the stale file behind
        proc2, sock2 = self._spawn_server(tmp_path)  # reclaims it
        os.kill(proc2.pid, signal.SIGTERM)
        assert proc2.wait(timeout=30) == 0
        assert not sock2.exists()
