"""The graph-backed sparse octagon, differentially against the dense one.

The contract under test is strict: :class:`SparseOctagon` is not
"approximately" the dense :class:`Octagon` -- its materialised matrix
must equal the dense backend's DBM *bit for bit* after every operation
of any operation sequence, raw and closed alike, and whole analyses
must produce identical verdicts and bounds.  The tests therefore lean
on randomised differential traces (the same trace executed against
both backends, compared after every step) plus the acceptance-criteria
counter assertions: on the sparse-profile suite programs the graph
representation must cut closure cell traffic by >=5x and peak DBM
bytes by >=2x while staying bit-identical.
"""

from __future__ import annotations

import random

import numpy as np
import pytest
from hypothesis import given, settings

from repro.analysis.analyzer import Analyzer
from repro.core import budget as budget_mod
from repro.core import sentinel, stats
from repro.core.budget import Budget
from repro.core.bounds import INF
from repro.core.constraints import LinExpr, OctConstraint
from repro.core.kinds import GraphPolicy
from repro.core.octagon import Octagon
from repro.domains.sparse_octagon import (ConfiguredSparseOctagonFactory,
                                          SparseOctagon)
from repro.errors import BudgetExceeded, IntegrityError
from repro.service.job import execute_job
from repro.service.validate import cross_validate
from repro.testing import faults
from repro.workloads.suite import BENCHMARKS

from .dbm_strategies import coherent_dbms

#: The suite rows whose workloads are sparse-profile (the TouchBoost
#: family: many variables, few relational constraints per component) --
#: the programs the acceptance criteria are asserted on.
SPARSE_PROFILE = ("gwsfmlau", "blwd", "eeorzcap", "jwgqbjzs")


# ----------------------------------------------------------------------
# differential trace harness
# ----------------------------------------------------------------------
def _dyadic(rng) -> float:
    return rng.randint(-64, 64) / 4.0


def _rand_cons(rng, n: int) -> OctConstraint:
    v = rng.randrange(n)
    kind = rng.randrange(5)
    if kind == 0:
        return OctConstraint.upper(v, _dyadic(rng))
    if kind == 1:
        return OctConstraint.lower(v, _dyadic(rng))
    w = rng.choice([x for x in range(n) if x != v])
    if kind == 2:
        return OctConstraint.diff(v, w, _dyadic(rng))
    if kind == 3:
        return OctConstraint.sum(v, w, _dyadic(rng))
    return OctConstraint.neg_sum(v, w, _dyadic(rng))


def _rand_linexpr(rng, n: int) -> LinExpr:
    coeffs = {}
    for _ in range(rng.randrange(0, 3)):
        coeffs[rng.randrange(n)] = rng.choice([1.0, -1.0, 2.0])
    return LinExpr(coeffs, _dyadic(rng))


def _assert_same(d: Octagon, s: SparseOctagon, ctx: str) -> None:
    assert d._bottom == s._bottom, f"{ctx}: bottom {d._bottom} vs {s._bottom}"
    if d._bottom:
        return
    dm, sm = d.mat, s.to_matrix()
    if not np.array_equal(dm, sm):
        bad = np.argwhere(dm != sm)
        i, j = map(int, bad[0])
        raise AssertionError(
            f"{ctx}: cell ({i},{j}) dense={dm[i, j]!r} sparse={sm[i, j]!r} "
            f"({len(bad)} cells differ)")
    assert d.closed == s.closed, f"{ctx}: closed {d.closed} vs {s.closed}"


_TRACE_OPS = (
    "meet_cons", "meet_conss", "assign_const", "assign_interval",
    "assign_translate", "assign_negate", "assign_var", "assign_linexpr",
    "assume", "forget", "closure", "join", "widen", "widen_thr", "narrow",
    "meet", "is_leq", "is_eq", "bounds", "substitute", "tighten",
    "contains", "expand", "fold", "add_dims", "remove_dims", "permute",
)


def _run_trace(rng, n: int = 6, trace_len: int = 40) -> None:
    """One random op sequence, bit-compared against dense at every step."""
    d: Octagon = Octagon.top(n)
    s: SparseOctagon = SparseOctagon.top(n)
    hist_d, hist_s = [d], [s]
    ops = []
    for step in range(trace_len):
        op = rng.choice(_TRACE_OPS)
        ops.append(op)
        ctx = f"step {step} op {op} (trace: {ops})"
        if op == "meet_cons":
            c = _rand_cons(rng, n)
            d, s = d.meet_constraint(c), s.meet_constraint(c)
        elif op == "meet_conss":
            cs = [_rand_cons(rng, n) for _ in range(rng.randrange(1, 4))]
            d, s = d.meet_constraints(cs), s.meet_constraints(cs)
        elif op == "assign_const":
            v, c = rng.randrange(n), _dyadic(rng)
            d, s = d.assign_const(v, c), s.assign_const(v, c)
        elif op == "assign_interval":
            v = rng.randrange(n)
            lo, hi = sorted((_dyadic(rng), _dyadic(rng)))
            d, s = d.assign_interval(v, lo, hi), s.assign_interval(v, lo, hi)
        elif op == "assign_translate":
            v, c = rng.randrange(n), _dyadic(rng)
            d, s = d.assign_translate(v, c), s.assign_translate(v, c)
        elif op == "assign_negate":
            v, c = rng.randrange(n), _dyadic(rng)
            d, s = d.assign_negate(v, c), s.assign_negate(v, c)
        elif op == "assign_var":
            v, w = rng.randrange(n), rng.randrange(n)
            k, c = rng.choice([1, -1]), _dyadic(rng)
            d = d.assign_var(v, w, coeff=k, offset=c)
            s = s.assign_var(v, w, coeff=k, offset=c)
        elif op == "assign_linexpr":
            v, e = rng.randrange(n), _rand_linexpr(rng, n)
            d, s = d.assign_linexpr(v, e), s.assign_linexpr(v, e)
        elif op == "assume":
            e = _rand_linexpr(rng, n)
            d, s = d.assume_linear(e), s.assume_linear(e)
        elif op == "forget":
            v = rng.randrange(n)
            d, s = d.forget(v), s.forget(v)
        elif op == "closure":
            d, s = d.closure(), s.closure()
        elif op in ("join", "widen", "widen_thr", "narrow", "meet"):
            i = rng.randrange(len(hist_d))
            od, os_ = hist_d[i], hist_s[i]
            if op == "join":
                d, s = d.join(od), s.join(os_)
            elif op == "widen":
                d, s = d.widening(od), s.widening(os_)
            elif op == "widen_thr":
                ts = sorted({_dyadic(rng) for _ in range(4)})
                d = d.widening_thresholds(od, ts)
                s = s.widening_thresholds(os_, ts)
            elif op == "narrow":
                d, s = d.narrowing(od), s.narrowing(os_)
            else:
                d, s = d.meet(od), s.meet(os_)
        elif op == "is_leq":
            i = rng.randrange(len(hist_d))
            assert d.is_leq(hist_d[i]) == s.is_leq(hist_s[i]), ctx
        elif op == "is_eq":
            i = rng.randrange(len(hist_d))
            assert d.is_eq(hist_d[i]) == s.is_eq(hist_s[i]), ctx
        elif op == "bounds":
            v = rng.randrange(n)
            assert d.bounds(v) == s.bounds(v), ctx
            e = _rand_linexpr(rng, n)
            assert d.bound_linexpr(e) == s.bound_linexpr(e), ctx
        elif op == "substitute":
            v, e = rng.randrange(n), _rand_linexpr(rng, n)
            d, s = d.substitute_linexpr(v, e), s.substitute_linexpr(v, e)
        elif op == "tighten":
            d, s = d.tighten_integers(), s.tighten_integers()
        elif op == "contains":
            pt = [_dyadic(rng) for _ in range(n)]
            assert d.contains_point(pt) == s.contains_point(pt), ctx
        elif op == "expand":
            if n <= 6:
                v, k = rng.randrange(n), rng.randrange(1, 3)
                d, s = d.expand(v, k), s.expand(v, k)
                n += k
                hist_d, hist_s = [d], [s]
        elif op == "fold":
            if n >= 4:
                k = rng.randrange(2, min(4, n))
                vs = rng.sample(range(n), k)
                d, s = d.fold(vs), s.fold(vs)
                n -= (k - 1)
                hist_d, hist_s = [d], [s]
        elif op == "add_dims":
            if n <= 6:
                k = rng.randrange(1, 3)
                d, s = d.add_dimensions(k), s.add_dimensions(k)
                n += k
                hist_d, hist_s = [d], [s]
        elif op == "remove_dims":
            if n >= 3:
                k = rng.randrange(1, min(3, n - 1))
                vs = rng.sample(range(n), k)
                d, s = d.remove_dimensions(vs), s.remove_dimensions(vs)
                n -= k
                hist_d, hist_s = [d], [s]
        elif op == "permute":
            perm = list(range(n))
            rng.shuffle(perm)
            d, s = d.permute(perm), s.permute(perm)
        _assert_same(d, s, ctx)
        assert d.is_bottom() == s.is_bottom(), ctx
        _assert_same(d, s, ctx + " after is_bottom")
        hist_d.append(d)
        hist_s.append(s)
    assert d.is_top() == s.is_top()
    assert d.to_box() == s.to_box()
    if not d._bottom:
        dc = {(c.i, c.coeff_i, c.j, c.coeff_j, c.bound)
              for c in d.to_constraints()}
        sc = {(c.i, c.coeff_i, c.j, c.coeff_j, c.bound)
              for c in s.to_constraints()}
        assert dc == sc, f"constraints differ: {dc ^ sc}"


class TestDifferentialTraces:
    @pytest.mark.parametrize("seed", [1, 2, 3, 4])
    def test_random_traces_bitwise(self, seed):
        rng = random.Random(seed)
        for _ in range(25):
            _run_trace(rng)

    def test_forced_graph_policy(self):
        # threshold 0 keeps the graph path on even for dense matrices
        rng = random.Random(99)
        policy = GraphPolicy(threshold=0.0, hysteresis=0.0)
        d = Octagon.top(5)
        s = SparseOctagon.top(5, policy=policy)
        for step in range(60):
            c = _rand_cons(rng, 5)
            d, s = d.meet_constraint(c), s.meet_constraint(c)
            if step % 7 == 0:
                d, s = d.closure(), s.closure()
            _assert_same(d, s, f"forced-graph step {step}")
            if d._bottom:
                break

    def test_forced_dense_mode(self):
        # threshold 1 forces the dense fallback inside the graph backend
        rng = random.Random(7)
        policy = GraphPolicy(threshold=1.0, hysteresis=0.0)
        d = Octagon.top(4)
        s = SparseOctagon.top(4, policy=policy)
        for step in range(40):
            c = _rand_cons(rng, 4)
            d, s = d.meet_constraint(c), s.meet_constraint(c)
            _assert_same(d, s, f"forced-dense step {step}")
            if d._bottom:
                break
        assert s.dense_mode or s._bottom


# ----------------------------------------------------------------------
# round trips
# ----------------------------------------------------------------------
class TestRoundTrip:
    @settings(max_examples=60, deadline=None)
    @given(coherent_dbms(max_n=5))
    def test_matrix_round_trip_bit_identical(self, m):
        s = SparseOctagon.from_matrix(m)
        assert np.array_equal(s.to_matrix(), m)

    @settings(max_examples=60, deadline=None)
    @given(coherent_dbms(max_n=5))
    def test_dense_sparse_dense_bit_identical(self, m):
        d = Octagon.from_matrix(m, copy=True)
        s = SparseOctagon.from_dense(d)
        back = s.to_dense()
        assert np.array_equal(back.mat, d.mat)
        assert back.closed == d.closed
        # and the closures agree bit for bit
        dc, sc = d.closure(), s.closure()
        assert d._bottom == s._bottom
        if not d._bottom:
            assert np.array_equal(dc.mat, sc.to_matrix())
            assert np.array_equal(sc.to_dense().mat, dc.mat)

    def test_closed_rep_is_canonical(self):
        s = SparseOctagon.from_constraints(3, [
            OctConstraint.upper(0, 4.0), OctConstraint.lower(0, -1.0),
            OctConstraint.diff(0, 1, 2.0),
        ]).closure()
        # no sentinels, no unary cells outside the snapshot
        for (r, c), v in s.cells.items():
            assert v < INF
            assert r ^ 1 != c
        assert s.snap is not None


# ----------------------------------------------------------------------
# acceptance criteria: suite parity + sparse-profile wins
# ----------------------------------------------------------------------
class TestSuiteParity:
    @pytest.fixture(scope="class")
    def report(self):
        jobs = [b.job("small") for b in BENCHMARKS]
        return cross_validate(jobs)

    def test_all_17_programs_verdict_and_bound_identical(self, report):
        assert len(report.programs) == 17
        assert report.ok, [
            (p.label, p.mismatches) for p in report.failures]

    def test_sparse_profile_cell_traffic_reduction(self, report):
        by_label = {p.label: p for p in report.programs}
        for name in SPARSE_PROFILE:
            ratio = by_label[name].cell_ratio()
            assert ratio is not None and ratio >= 5.0, (
                f"{name}: closure cell traffic only {ratio}x lower")

    def test_sparse_profile_peak_memory_reduction(self, report):
        by_label = {p.label: p for p in report.programs}
        for name in SPARSE_PROFILE:
            ratio = by_label[name].peak_bytes_ratio()
            assert ratio is not None and ratio >= 2.0, (
                f"{name}: peak DBM bytes only {ratio}x lower")

    def test_sparsity_gauge_reported(self, report):
        for prog in report.programs:
            sp = prog.sparsity
            assert sp is not None and 0.0 <= sp <= 1.0


# ----------------------------------------------------------------------
# switching, budgets, stats
# ----------------------------------------------------------------------
class TestSwitching:
    def test_hysteresis_counts_representation_switches(self):
        policy = GraphPolicy(threshold=0.5, hysteresis=0.0)
        cons = []  # densify n=4: 18 of 24 possible binary half-cells
        for v in range(4):
            for w in range(v + 1, 4):
                cons.append(OctConstraint.diff(v, w, 1.0))
                cons.append(OctConstraint.sum(v, w, 3.0))
                cons.append(OctConstraint.neg_sum(v, w, 5.0))
        with stats.collecting() as collector:
            s = SparseOctagon.from_constraints(4, cons, policy=policy)
            assert not s.dense_mode
            s = s.closure()  # sparsity below threshold: goes dense
            assert s.dense_mode and not s._bottom
            for v in range(3):  # recover sparsity ...
                s = s.forget(v)
            # ... and force a raw re-closure (widening output is unclosed)
            s = s.widening(s.assign_translate(3, 1.0))
            assert not s.closed
            s = s.closure()
            assert not s.dense_mode  # hysteresis re-decided: back to graph
        assert collector.counter_summary()["sparse_rep_switches"] == 2

    def test_budget_interrupt_mid_closure_leaves_state_usable(self):
        s = SparseOctagon.from_constraints(6, [
            OctConstraint.diff(0, 1, 2.0), OctConstraint.sum(2, 3, 5.0),
            OctConstraint.upper(4, 1.0),
        ])
        raw = s.to_matrix().copy()
        with budget_mod.governed(Budget(max_cells=4)):
            with pytest.raises(BudgetExceeded):
                s.closure()
        # the interrupt fired before any mutation: state still raw + exact
        assert not s.closed
        assert np.array_equal(s.to_matrix(), raw)
        closed = s.closure()  # and closable once the budget is lifted
        assert closed.closed

    def test_analyzer_degrades_under_cell_budget(self):
        source = BENCHMARKS[0].source("small")
        result = Analyzer(domain="sparse-octagon", cell_budget=64).analyze(
            source)
        assert result.degraded
        used = {p.domain_used for p in result.procedures if p.degraded}
        assert used <= {"zone", "interval"}

    def test_configured_factory_and_analyzer_threshold(self):
        factory = ConfiguredSparseOctagonFactory(
            GraphPolicy(threshold=0.25), name="sparse-octagon")
        top = factory.top(3)
        assert isinstance(top, SparseOctagon)
        assert top.policy.threshold == 0.25
        res = Analyzer(domain="sparse-octagon", sparse_threshold=0.25).analyze(
            "proc p { x = [0, 4]; assert(x <= 4); }")
        assert res.all_verified

    def test_gauges_recorded_per_job(self):
        result = execute_job(BENCHMARKS[4].job("small",
                                               domain="sparse-octagon"))
        counters = result.counters
        assert counters["dbm_finite_cells"] > 0
        assert counters["dbm_half_size"] > 0
        assert counters["dbm_peak_bytes"] > 0
        sp = stats.sparsity_ratio(counters)
        assert sp is not None and 0.0 < sp <= 1.0

    def test_cache_key_depends_on_sparse_threshold(self):
        a = BENCHMARKS[0].job("small", domain="sparse-octagon")
        b = BENCHMARKS[0].job("small", domain="sparse-octagon",
                              sparse_threshold=0.75)
        assert a.key() != b.key()
        assert a.options()["sparse_threshold"] is None
        assert b.options()["sparse_threshold"] == 0.75


# ----------------------------------------------------------------------
# sentinel audits and fault injection
# ----------------------------------------------------------------------
class TestSentinelAndFaults:
    @pytest.fixture(autouse=True)
    def _restore(self):
        previous = sentinel.paranoid_enabled()
        yield
        sentinel.set_paranoid(previous)
        faults.clear()

    def test_paranoid_audits_run_on_sparse_reps(self):
        sentinel.set_paranoid(True)
        with stats.collecting() as collector:
            rng = random.Random(21)
            _run_trace(rng, n=4, trace_len=15)
        assert collector.counter_summary().get("paranoid_checks", 0) > 0

    def test_validator_rejects_noncanonical_key(self):
        s = SparseOctagon.top(3)
        s.cells[(0, 4)] = 1.0  # 4 > (0 | 1): mirror-half coordinate
        with pytest.raises(IntegrityError):
            sentinel.validate_sparse_octagon(s)

    def test_validator_rejects_unary_cell_in_closed_form(self):
        s = SparseOctagon.from_box([(0.0, 2.0)]).closure()
        s.cells[(1, 0)] = 2.0  # unary belongs in the snapshot when closed
        with pytest.raises(IntegrityError):
            sentinel.validate_sparse_octagon(s)

    def test_corrupt_fault_is_detected_by_sentinel(self):
        sentinel.set_paranoid(True)
        # finite unaries ensure the corruption breaks closure invariants
        s = SparseOctagon.from_constraints(3, [
            OctConstraint.upper(0, 4.0), OctConstraint.lower(0, -1.0),
            OctConstraint.upper(1, 9.0), OctConstraint.diff(0, 1, 2.0),
        ])
        with faults.injected("dbm_corrupt"):
            with pytest.raises(IntegrityError):
                s.closure()
