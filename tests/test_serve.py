"""Tests for the analysis server: protocol, tiers, concurrency, parity.

The load-bearing claims, each pinned here:

* the per-procedure decomposition is *exact* -- the server's merged
  verdicts and exit bounds are identical to a one-shot analysis of the
  same source, across the whole 17-benchmark suite;
* the tier stack works -- a repeated submission is served from the
  memory LRU with zero recompiled plans and zero fixpoint re-runs, an
  edited submission recomputes exactly the edited procedure, and a
  fresh server instance falls through to the disk cache;
* concurrent clients get the same answers as serial one-shot analysis.
"""

import socket
import threading

import pytest

from repro.frontend.fingerprint import procedure_digest, procedure_source
from repro.frontend.parser import parse_program
from repro.serve import (
    AnalysisServer, ProtocolError, ServeClient, ServeError, protocol,
)
from repro.serve.incremental import IncrementalAnalyzer, normalize_options
from repro.service.cache import ResultCache
from repro.service.job import AnalysisJob, execute_job
from repro.workloads.suite import load_suite

TWO_PROCS = """\
proc f {
  x = [0, 4];
  y = x + 1;
  assert(y <= 5);
}
proc g {
  i = 0;
  while (i < 9) { i = i + 1; }
  assert(i >= 9);
}
"""

#: The same program with only ``g`` edited (bound 9 -> 12).
TWO_PROCS_EDITED = TWO_PROCS.replace("9", "12")


# ----------------------------------------------------------------------
# protocol framing
# ----------------------------------------------------------------------
class TestProtocol:
    def _pair(self):
        return socket.socketpair()

    def test_round_trip(self):
        a, b = self._pair()
        try:
            protocol.send_message(a, {"cmd": "ping", "n": 42})
            assert protocol.recv_message(b) == {"cmd": "ping", "n": 42}
        finally:
            a.close()
            b.close()

    def test_clean_eof_is_none(self):
        a, b = self._pair()
        a.close()
        try:
            assert protocol.recv_message(b) is None
        finally:
            b.close()

    def test_eof_mid_frame_raises(self):
        a, b = self._pair()
        try:
            a.sendall(b"\x00\x00\x00\x10partial")  # claims 16, sends 7
            a.close()
            with pytest.raises(ProtocolError, match="mid-frame"):
                protocol.recv_message(b)
        finally:
            b.close()

    def test_oversized_length_rejected_before_alloc(self):
        a, b = self._pair()
        try:
            a.sendall((protocol.MAX_MESSAGE + 1).to_bytes(4, "big"))
            with pytest.raises(ProtocolError, match="exceeds"):
                protocol.recv_message(b)
        finally:
            a.close()
            b.close()

    def test_non_object_body_rejected(self):
        a, b = self._pair()
        try:
            body = b"[1,2,3]"
            a.sendall(len(body).to_bytes(4, "big") + body)
            with pytest.raises(ProtocolError, match="expected object"):
                protocol.recv_message(b)
        finally:
            a.close()
            b.close()


# ----------------------------------------------------------------------
# per-procedure fingerprinting
# ----------------------------------------------------------------------
class TestFingerprint:
    def test_canonical_source_reparses_identically(self):
        proc = parse_program(TWO_PROCS).procedures[0]
        again = parse_program(procedure_source(proc)).procedures[0]
        assert procedure_source(again) == procedure_source(proc)

    def test_digest_ignores_formatting_and_siblings(self):
        reformatted = TWO_PROCS.replace("\n  ", "\n      ")
        reordered = parse_program(TWO_PROCS_EDITED)  # g edited, f intact
        f0 = parse_program(TWO_PROCS).procedures[0]
        f1 = parse_program(reformatted).procedures[0]
        f2 = reordered.procedures[0]
        assert procedure_digest(f0) == procedure_digest(f1)
        assert procedure_digest(f0) == procedure_digest(f2)

    def test_digest_tracks_statement_changes(self):
        g0 = parse_program(TWO_PROCS).procedures[1]
        g1 = parse_program(TWO_PROCS_EDITED).procedures[1]
        assert procedure_digest(g0) != procedure_digest(g1)

    def test_for_procedure_job_uses_canonical_source(self):
        proc = parse_program(TWO_PROCS).procedures[0]
        job = AnalysisJob.for_procedure(proc)
        assert job.source == procedure_source(proc)
        assert job.label == "f"


# ----------------------------------------------------------------------
# the incremental engine
# ----------------------------------------------------------------------
class TestIncremental:
    def test_unknown_option_rejected(self):
        inc = IncrementalAnalyzer()
        with pytest.raises(ValueError, match="unknown analyzer option"):
            inc.analyze(TWO_PROCS, options={"wideningdelay": 3})
        assert normalize_options({"widening_thresholds": [1, 2]}) \
            == {"widening_thresholds": (1.0, 2.0)}

    def test_cold_warm_edited_tiers(self):
        inc = IncrementalAnalyzer()
        cold, info = inc.analyze(TWO_PROCS)
        assert info["tiers"] == {"memory": 0, "disk": 0, "computed": 2}
        assert cold.counters["fixpoint_runs"] == 2
        assert cold.counters["plans_compiled"] > 0

        warm, info = inc.analyze(TWO_PROCS)
        assert info["tiers"] == {"memory": 2, "disk": 0, "computed": 0}
        # The acceptance bar: a warm request recompiles zero plans and
        # re-runs zero fixpoints.
        assert warm.counters["fixpoint_runs"] == 0
        assert warm.counters["plans_compiled"] == 0
        assert warm.verdicts() == cold.verdicts()
        assert warm.procedures == cold.procedures
        assert warm.cached and warm.seconds == 0.0

        edited, info = inc.analyze(TWO_PROCS_EDITED)
        assert info["tiers"] == {"memory": 1, "disk": 0, "computed": 1}
        assert info["procedures"] == [["f", "memory"], ["g", "computed"]]
        assert edited.counters["fixpoint_runs"] == 1

    def test_merged_matches_one_shot(self):
        inc = IncrementalAnalyzer()
        direct = execute_job(AnalysisJob(source=TWO_PROCS, label="direct"))
        for _ in range(2):  # both the computed and the cached pass
            served, _ = inc.analyze(TWO_PROCS, label="direct")
            assert served.key == AnalysisJob(source=TWO_PROCS,
                                             label="direct").key()
            assert served.verdicts() == direct.verdicts()
            assert served.procedures == direct.procedures
            assert served.outcome == direct.outcome
            assert served.rungs == direct.rungs

    def test_disk_tier_survives_process_restart(self, tmp_path):
        cache = ResultCache(str(tmp_path / "cache"))
        first = IncrementalAnalyzer(cache)
        cold, _ = first.analyze(TWO_PROCS)
        # A new engine with an empty LRU models a restarted server.
        second = IncrementalAnalyzer(ResultCache(str(tmp_path / "cache")))
        warm, info = second.analyze(TWO_PROCS)
        assert info["tiers"] == {"memory": 0, "disk": 2, "computed": 0}
        assert warm.verdicts() == cold.verdicts()
        assert warm.procedures == cold.procedures
        # Disk hits are promoted: the next pass is memory-tier.
        _, info = second.analyze(TWO_PROCS)
        assert info["tiers"] == {"memory": 2, "disk": 0, "computed": 0}

    def test_option_change_invalidates(self):
        inc = IncrementalAnalyzer()
        inc.analyze(TWO_PROCS)
        _, info = inc.analyze(TWO_PROCS, options={"domain": "interval"})
        assert info["tiers"]["computed"] == 2

    def test_suite_parity_with_one_shot(self):
        """Whole 17-benchmark suite: served results bit-identical to
        one-shot analysis, cold and warm."""
        inc = IncrementalAnalyzer()
        for bench in load_suite():
            job = bench.job(scale="small")
            direct = execute_job(job)
            for _ in range(2):
                served, _ = inc.analyze(job.source, label=bench.name)
                assert served.verdicts() == direct.verdicts(), bench.name
                assert served.procedures == direct.procedures, bench.name
                assert served.outcome == direct.outcome, bench.name


# ----------------------------------------------------------------------
# the daemon end to end
# ----------------------------------------------------------------------
@pytest.fixture
def server(tmp_path):
    srv = AnalysisServer(str(tmp_path / "serve.sock"),
                         cache=ResultCache(str(tmp_path / "cache")),
                         workers=4)
    srv.start()
    thread = threading.Thread(target=srv.serve_forever, daemon=True)
    thread.start()
    yield srv
    srv.stop()
    thread.join(timeout=10)
    assert not thread.is_alive()


class TestServer:
    def test_analyze_twice_hits_memory_tier(self, server):
        with ServeClient(server.socket_path) as client:
            first = client.analyze(TWO_PROCS, label="t")
            second = client.analyze(TWO_PROCS, label="t")
        assert first["tiers"]["computed"] == 2
        assert second["tiers"] == {"memory": 2, "disk": 0, "computed": 0}
        assert second["result"]["checks"] == first["result"]["checks"]
        assert second["result"]["counters"]["plans_compiled"] == 0
        assert second["result"]["counters"]["fixpoint_runs"] == 0
        assert second["request_seconds"] < 1.0

    def test_status_reports_resolved_config(self, server):
        from repro.core import kernels

        with ServeClient(server.socket_path) as client:
            status = client.status()
        # The same resolved configuration `python -m repro suite` prints
        # (pinned against drift in tests/test_cli.py).
        assert status["kernel_backend"] == kernels.resolve(None)
        assert status["cache_dir"] == str(server.cache.root)
        assert status["address"].endswith("serve.sock")
        assert status["workers"] == 4

    def test_status_reports_memory_lru_occupancy(self, server):
        with ServeClient(server.socket_path) as client:
            empty = client.status()
            assert empty["lru_entries"] == 0
            assert empty["lru_bytes"] == 0
            client.analyze(TWO_PROCS, label="t")
            warm = client.status()
        # one cached entry per analysed procedure, weighed by result size
        assert warm["lru_entries"] == 2
        assert warm["lru_bytes"] > 0

    def test_stats_and_metrics_surface_tiers(self, server):
        from repro.obs.metrics import validate_prometheus_text

        with ServeClient(server.socket_path) as client:
            client.analyze(TWO_PROCS)
            client.analyze(TWO_PROCS)
            stats = client.stats()
            prom = client.metrics()
        counters = stats["counters"]
        assert counters["serve_procs_computed"] == 2
        assert counters["serve_procs_memory"] == 2
        assert counters["serve_requests_analyze"] == 2
        assert any(key.startswith("serve_request_seconds|analyze")
                   for key in stats["latency"])
        assert validate_prometheus_text(prom) > 0
        assert "repro_serve_procs_memory_total 2" in prom

    def test_parse_error_is_reported_and_survivable(self, server):
        with ServeClient(server.socket_path) as client:
            with pytest.raises(ServeError, match="line"):
                client.analyze("proc broken {")
            assert client.ping()["pong"]  # the daemon survived
            with pytest.raises(ServeError, match="unknown command"):
                client.request({"cmd": "explode"})

    def test_unknown_option_round_trips_as_error(self, server):
        with ServeClient(server.socket_path) as client:
            with pytest.raises(ServeError, match="unknown analyzer option"):
                client.analyze(TWO_PROCS, options={"typo": 1})

    def test_shutdown_command_stops_and_unlinks(self, server):
        import os

        with ServeClient(server.socket_path) as client:
            client.shutdown()
        server._stopping.wait(timeout=10)
        for _ in range(100):
            if not os.path.exists(server.socket_path):
                break
            threading.Event().wait(0.05)
        assert not os.path.exists(server.socket_path)

    def test_tcp_mode(self, tmp_path):
        srv = AnalysisServer(port=0, use_cache=False)
        srv.start()
        thread = threading.Thread(target=srv.serve_forever, daemon=True)
        thread.start()
        try:
            with ServeClient(port=srv.port) as client:
                response = client.analyze(TWO_PROCS)
            assert response["tiers"]["computed"] == 2
        finally:
            srv.stop()
            thread.join(timeout=10)

    def test_concurrent_clients_match_serial(self, server):
        """N threads submitting overlapping edited programs all get the
        serial one-shot answers, deterministically."""
        variants = [TWO_PROCS, TWO_PROCS_EDITED,
                    TWO_PROCS.replace("x + 1", "x + 2").replace(
                        "y <= 5", "y <= 6")]
        serial = {src: execute_job(AnalysisJob(source=src))
                  for src in variants}
        failures = []

        def worker(tid):
            try:
                with ServeClient(server.socket_path) as client:
                    for round_ in range(3):
                        src = variants[(tid + round_) % len(variants)]
                        response = client.analyze(src)
                        expect = serial[src]
                        got = response["result"]
                        assert got["checks"] == [
                            [c.procedure, c.cond_text, c.verified]
                            for c in expect.checks]
                        assert [p["name"] for p in got["procedures"]] \
                            == [p.name for p in expect.procedures]
                        assert [p["box"] for p in got["procedures"]] \
                            == [p.box for p in expect.procedures]
                        assert got["outcome"] == expect.outcome
            except Exception as exc:  # noqa: BLE001 -- collected below
                failures.append(f"thread {tid}: {exc!r}")

        threads = [threading.Thread(target=worker, args=(tid,))
                   for tid in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
        assert not failures, failures
        # 6 threads x 3 rounds x 2 procedures, but only 4 distinct
        # procedure bodies exist; concurrent first-computations of the
        # same key race benignly, so allow a little slack -- the point
        # is that the vast majority of lookups were cache tiers.
        counts = server.analyzer.tier_counts
        assert sum(counts.values()) == 6 * 3 * 2
        assert 4 <= counts["computed"] <= 12
        assert counts["memory"] >= 24
