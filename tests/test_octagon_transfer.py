"""Semantic tests of the Octagon transfer functions against concrete
execution: each abstract operation must over-approximate the concrete
one on sampled points."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import INF, Octagon, OctConstraint
from repro.core.constraints import LinExpr


def box(*bounds):
    return Octagon.from_box(list(bounds))


class TestForget:
    def test_forget_drops_var(self):
        o = box((1.0, 2.0), (3.0, 4.0)).forget(0)
        assert o.bounds(0) == (-INF, INF)
        assert o.bounds(1) == (3.0, 4.0)

    def test_forget_keeps_derived_relations(self):
        # x = y and y = z: forgetting y must keep x = z.
        o = Octagon.from_constraints(3, [
            OctConstraint.diff(0, 1, 0.0), OctConstraint.diff(1, 0, 0.0),
            OctConstraint.diff(1, 2, 0.0), OctConstraint.diff(2, 1, 0.0)])
        f = o.forget(1)
        lo, hi = f.bound_linexpr(LinExpr({0: 1.0, 2: -1.0}))
        assert (lo, hi) == (0.0, 0.0)

    def test_forget_bottom(self):
        assert Octagon.bottom(2).forget(0).is_bottom()


class TestAssignments:
    def test_assign_const(self):
        o = Octagon.top(2).assign_const(0, 5.0)
        assert o.bounds(0) == (5.0, 5.0)

    def test_assign_const_overwrites(self):
        o = box((0.0, 1.0), (0.0, 1.0)).assign_const(0, 9.0)
        assert o.bounds(0) == (9.0, 9.0)
        assert o.bounds(1) == (0.0, 1.0)

    def test_assign_interval(self):
        o = Octagon.top(1).assign_interval(0, -2.0, 7.0)
        assert o.bounds(0) == (-2.0, 7.0)

    def test_assign_interval_empty(self):
        assert Octagon.top(1).assign_interval(0, 3.0, 2.0).is_bottom()

    def test_translate_is_exact(self):
        o = box((0.0, 2.0), (1.0, 1.0)).assign_var(0, 0, coeff=1, offset=3.0)
        assert o.bounds(0) == (3.0, 5.0)
        assert o.bounds(1) == (1.0, 1.0)

    def test_translate_preserves_relations(self):
        o = Octagon.from_constraints(2, [OctConstraint.diff(0, 1, 0.0),
                                         OctConstraint.diff(1, 0, 0.0)])
        o = o.assign_var(0, 0, coeff=1, offset=2.0)  # x := x + 2
        lo, hi = o.bound_linexpr(LinExpr({0: 1.0, 1: -1.0}))
        assert (lo, hi) == (2.0, 2.0)

    def test_negate(self):
        o = box((1.0, 3.0)).assign_var(0, 0, coeff=-1)
        assert o.bounds(0) == (-3.0, -1.0)

    def test_negate_with_offset(self):
        o = box((1.0, 3.0)).assign_var(0, 0, coeff=-1, offset=10.0)
        assert o.bounds(0) == (7.0, 9.0)

    def test_assign_var_relational(self):
        o = box((0.0, 4.0), (0.0, 0.0)).assign_var(1, 0, coeff=1, offset=1.0)
        # y := x + 1 establishes y - x = 1.
        lo, hi = o.bound_linexpr(LinExpr({1: 1.0, 0: -1.0}))
        assert (lo, hi) == (1.0, 1.0)
        assert o.bounds(1) == (1.0, 5.0)

    def test_assign_neg_var(self):
        o = box((1.0, 2.0), (0.0, 0.0)).assign_var(1, 0, coeff=-1, offset=0.0)
        assert o.bounds(1) == (-2.0, -1.0)

    def test_assign_linexpr_general(self):
        o = box((0.0, 1.0), (0.0, 2.0), (0.0, 0.0))
        o = o.assign_linexpr(2, LinExpr({0: 1.0, 1: 1.0}, 1.0))  # z := x+y+1
        assert o.bounds(2) == (1.0, 4.0)
        # Relational consequence: z - x = y + 1 in [1, 3].
        lo, hi = o.bound_linexpr(LinExpr({2: 1.0, 0: -1.0}))
        assert (lo, hi) == (1.0, 3.0)

    def test_assign_linexpr_scaled(self):
        o = box((1.0, 2.0), (0.0, 0.0)).assign_linexpr(1, LinExpr({0: 3.0}))
        assert o.bounds(1) == (3.0, 6.0)

    def test_assign_self_reference(self):
        # x := x + y with both bounded.
        o = box((0.0, 1.0), (2.0, 3.0)).assign_linexpr(
            0, LinExpr({0: 1.0, 1: 1.0}))
        assert o.bounds(0) == (2.0, 4.0)

    def test_assign_on_bottom(self):
        assert Octagon.bottom(2).assign_const(0, 1.0).is_bottom()
        assert Octagon.bottom(2).assign_var(0, 1).is_bottom()

    def test_assign_var_rejects_bad_coeff(self):
        with pytest.raises(ValueError):
            Octagon.top(2).assign_var(0, 1, coeff=2)


class TestAssume:
    def test_assume_unary(self):
        o = Octagon.top(1).assume_linear(LinExpr({0: 1.0}, -5.0))  # x - 5 <= 0
        assert o.bounds(0) == (-INF, 5.0)

    def test_assume_binary_relational(self):
        o = box((0.0, 10.0), (0.0, 10.0)).assume_linear(
            LinExpr({0: 1.0, 1: -1.0}))  # x <= y
        assert o.sat_constraint(OctConstraint.diff(0, 1, 0.0))

    def test_assume_contradiction(self):
        o = box((3.0, 4.0)).assume_linear(LinExpr({0: 1.0}, 0.0))  # x <= 0
        assert o.is_bottom()

    def test_assume_constant(self):
        assert not Octagon.top(1).assume_linear(LinExpr({}, -1.0)).is_bottom()
        assert Octagon.top(1).assume_linear(LinExpr({}, 1.0)).is_bottom()

    def test_assume_nonunit_coefficient(self):
        # 2x - 4 <= 0 is not octagonal; the interval fallback still
        # bounds x when the residual is finite... here 2x <= 4 needs a
        # direct division; we accept the sound no-op for the unary term
        # but meet at least stays sound.
        o = box((0.0, 10.0)).assume_linear(LinExpr({0: 2.0}, -4.0))
        lo, hi = o.bounds(0)
        assert lo == 0.0 and hi <= 10.0


class TestSoundnessBySampling:
    @settings(max_examples=30, deadline=None)
    @given(st.integers(-5, 5), st.integers(0, 2), st.integers(0, 2),
           st.sampled_from([-1, 1]))
    def test_assign_var_soundness(self, off, v, w, coeff):
        o = Octagon.from_box([(-3.0, 3.0)] * 3)
        res = o.assign_var(v, w, coeff=coeff, offset=float(off))
        rng = np.random.default_rng(1)
        for _ in range(25):
            pt = rng.uniform(-3, 3, 3)
            out = pt.copy()
            out[v] = coeff * pt[w] + off
            assert res.contains_point(out)

    @settings(max_examples=30, deadline=None)
    @given(st.dictionaries(st.integers(0, 2), st.integers(-2, 2), max_size=3),
           st.integers(-3, 3), st.integers(0, 2))
    def test_assign_linexpr_soundness(self, coeffs, const, v):
        expr = LinExpr({k: float(c) for k, c in coeffs.items() if c}, float(const))
        o = Octagon.from_box([(-2.0, 2.0)] * 3)
        res = o.assign_linexpr(v, expr)
        rng = np.random.default_rng(2)
        for _ in range(20):
            pt = rng.uniform(-2, 2, 3)
            out = pt.copy()
            out[v] = expr.evaluate(pt)
            assert res.contains_point(out)

    @settings(max_examples=30, deadline=None)
    @given(st.dictionaries(st.integers(0, 2), st.integers(-2, 2), max_size=3),
           st.integers(-4, 4))
    def test_assume_soundness(self, coeffs, const):
        expr = LinExpr({k: float(c) for k, c in coeffs.items() if c}, float(const))
        o = Octagon.from_box([(-3.0, 3.0)] * 3)
        res = o.assume_linear(expr)
        rng = np.random.default_rng(3)
        for _ in range(25):
            pt = rng.uniform(-3, 3, 3)
            if expr.evaluate(pt) <= 0:
                assert res.contains_point(pt), (
                    f"{pt} satisfies the test but was excluded")
