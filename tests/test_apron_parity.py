"""Differential tests for the extended (API-parity) operations:
dimension management, thresholds widening and substitution must agree
between the optimised Octagon and the APRON baseline."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from dbm_strategies import dbm_entries, make_coherent_dbm
from repro.core import ApronOctagon, LinExpr, Octagon, OctConstraint
from repro.core.halfmat import HalfMat


def make_pair(n, entries):
    mat = make_coherent_dbm(n, entries)
    return Octagon.from_matrix(mat), ApronOctagon(n, HalfMat.from_full(mat))


def equal_state(o: Octagon, a: ApronOctagon) -> bool:
    if o.is_bottom() or a.is_bottom():
        return o.is_bottom() == a.is_bottom()
    co, ca = o.closure(), a.closure()
    if o.is_bottom() or a.is_bottom():
        return o.is_bottom() == a.is_bottom()
    full = ca.half.to_full()
    return np.allclose(np.where(np.isinf(co.mat), 1e300, co.mat),
                       np.where(np.isinf(full), 1e300, full))


SET = settings(max_examples=40, deadline=None)


class TestDimensionParity:
    @SET
    @given(st.integers(2, 5), st.data())
    def test_add_dimensions(self, n, data):
        o, a = make_pair(n, data.draw(dbm_entries(n, 15)))
        k = data.draw(st.integers(1, 3))
        assert equal_state(o.add_dimensions(k), a.add_dimensions(k))

    @SET
    @given(st.integers(2, 5), st.data())
    def test_remove_dimensions(self, n, data):
        o, a = make_pair(n, data.draw(dbm_entries(n, 15)))
        drop = data.draw(st.lists(st.integers(0, n - 1), min_size=1,
                                  max_size=n - 1, unique=True))
        assert equal_state(o.remove_dimensions(drop), a.remove_dimensions(drop))

    @SET
    @given(st.integers(2, 5), st.data())
    def test_permute(self, n, data):
        o, a = make_pair(n, data.draw(dbm_entries(n, 15)))
        perm = data.draw(st.permutations(range(n)))
        assert equal_state(o.permute(list(perm)), a.permute(list(perm)))

    def test_apron_permute_validation(self):
        with pytest.raises(ValueError):
            ApronOctagon.top(2).permute([0, 0])
        with pytest.raises(ValueError):
            ApronOctagon.top(2).add_dimensions(-1)
        with pytest.raises(ValueError):
            ApronOctagon.top(2).remove_dimensions([5])


class TestWideningThresholdsParity:
    @SET
    @given(st.integers(1, 4), st.data())
    def test_thresholds_agree(self, n, data):
        o1, a1 = make_pair(n, data.draw(dbm_entries(n, 12)))
        o2, a2 = make_pair(n, data.draw(dbm_entries(n, 12)))
        ts = sorted(data.draw(st.lists(st.integers(-5, 30).map(float),
                                       min_size=1, max_size=4, unique=True)))
        ow = o1.widening_thresholds(o2, ts)
        aw = a1.widening_thresholds(a2, ts)
        assert equal_state(ow, aw)

    def test_threshold_bumps_to_next(self):
        a1 = ApronOctagon.from_box([(0.0, 1.0)])
        a2 = ApronOctagon.from_box([(0.0, 3.0)])
        w = a1.widening_thresholds(a2, [5.0, 10.0])
        # 2*hi grows from 2 to 6, bumped to the next threshold 10 -> hi 5.
        assert w.bounds(0)[1] == 5.0


class TestSubstitutionParity:
    @SET
    @given(st.integers(2, 4), st.data())
    def test_substitute_var(self, n, data):
        o, a = make_pair(n, data.draw(dbm_entries(n, 12)))
        v = data.draw(st.integers(0, n - 1))
        w = data.draw(st.integers(0, n - 1))
        coeff = data.draw(st.sampled_from([-1, 1]))
        off = float(data.draw(st.integers(-4, 4)))
        if w == v and coeff == -1:
            return  # negation substitution exercised separately
        assert equal_state(o.substitute_var(v, w, coeff=coeff, offset=off),
                           a.substitute_var(v, w, coeff=coeff, offset=off))

    @SET
    @given(st.integers(2, 4), st.data())
    def test_substitute_const(self, n, data):
        o, a = make_pair(n, data.draw(dbm_entries(n, 12)))
        v = data.draw(st.integers(0, n - 1))
        c = float(data.draw(st.integers(-5, 8)))
        assert equal_state(o.substitute_const(v, c), a.substitute_const(v, c))

    @SET
    @given(st.integers(2, 4), st.data())
    def test_substitute_general_linexpr(self, n, data):
        o, a = make_pair(n, data.draw(dbm_entries(n, 12)))
        v = data.draw(st.integers(0, n - 1))
        coeffs = data.draw(st.dictionaries(st.integers(0, n - 1),
                                           st.sampled_from([-1.0, 1.0, 2.0]),
                                           min_size=1, max_size=2))
        expr = LinExpr(coeffs, float(data.draw(st.integers(-3, 3))))
        assert equal_state(o.substitute_linexpr(v, expr),
                           a.substitute_linexpr(v, expr))
