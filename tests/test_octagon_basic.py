"""Unit tests for the Octagon element: constructors, kinds, queries."""

import numpy as np
import pytest

from repro.core import INF, DbmKind, Octagon, OctConstraint, SwitchPolicy
from repro.core.constraints import LinExpr


class TestConstructors:
    def test_top(self):
        o = Octagon.top(4)
        assert o.is_top()
        assert not o.is_bottom()
        assert o.kind == DbmKind.TOP
        assert o.to_box() == [(-INF, INF)] * 4

    def test_bottom(self):
        o = Octagon.bottom(3)
        assert o.is_bottom()
        assert not o.is_top()
        assert o.to_box() == [(INF, -INF)] * 3

    def test_from_box(self):
        o = Octagon.from_box([(0.0, 2.0), (-INF, 5.0), (-INF, INF)])
        assert o.bounds(0) == (0.0, 2.0)
        assert o.bounds(1) == (-INF, 5.0)
        assert o.bounds(2) == (-INF, INF)

    def test_from_box_empty(self):
        assert Octagon.from_box([(2.0, 1.0)]).is_bottom()

    def test_from_constraints(self):
        o = Octagon.from_constraints(2, [OctConstraint.sum(0, 1, 5.0),
                                         OctConstraint.upper(0, 1.0)])
        lo, hi = o.bound_linexpr(LinExpr({0: 1.0, 1: 1.0}))
        assert hi == 5.0

    def test_from_matrix_roundtrip(self):
        o = Octagon.from_box([(1.0, 2.0), (0.0, 4.0)])
        p = Octagon.from_matrix(o.mat)
        assert p.is_eq(o)

    def test_from_matrix_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            Octagon.from_matrix(np.zeros((3, 3)))

    def test_zero_dimensions(self):
        o = Octagon.top(0)
        assert not o.is_bottom()
        assert o.to_box() == []
        assert o.join(Octagon.top(0)).n == 0


class TestKinds:
    def test_top_kind(self):
        assert Octagon.top(5).kind == DbmKind.TOP

    def test_decomposed_kind(self):
        o = Octagon.top(6).meet_constraint(OctConstraint.diff(0, 1, 3.0))
        assert o.kind == DbmKind.DECOMPOSED
        assert o.partition.support == {0, 1}

    def test_dense_kind_when_saturated(self):
        n = 3
        o = Octagon.top(n)
        for i in range(n):
            for j in range(i + 1, n):
                o = o.meet_constraint(OctConstraint.sum(i, j, 10.0))
                o = o.meet_constraint(OctConstraint.diff(i, j, 10.0))
                o = o.meet_constraint(OctConstraint.diff(j, i, 10.0))
                o = o.meet_constraint(OctConstraint.neg_sum(i, j, 10.0))
            o = o.meet_constraint(OctConstraint.upper(i, 5.0))
            o = o.meet_constraint(OctConstraint.lower(i, -5.0))
        o = o.closure()
        assert o.kind == DbmKind.DENSE

    def test_policy_disables_decomposition(self):
        policy = SwitchPolicy(decompose=False)
        o = Octagon.top(6, policy=policy).meet_constraint(
            OctConstraint.diff(0, 1, 3.0))
        assert o.kind == DbmKind.DENSE

    def test_sparsity_measure(self):
        o = Octagon.top(5)
        assert 0.8 < o.sparsity <= 1.0


class TestClosureCaching:
    def test_closure_does_not_mutate_original(self):
        o = Octagon.from_constraints(3, [OctConstraint.diff(0, 1, 1.0),
                                         OctConstraint.diff(1, 2, 1.0)])
        before = o.mat.copy()
        c = o.closure()
        assert np.array_equal(np.isinf(o.mat), np.isinf(before))
        # The closure derived the transitive bound; the original lacks it.
        assert c is not o
        assert c.closed

    def test_closure_cached(self):
        o = Octagon.from_constraints(2, [OctConstraint.diff(0, 1, 1.0)])
        assert o.closure() is o.closure()

    def test_closed_octagon_returns_self(self):
        o = Octagon.top(2)
        assert o.closure() is o

    def test_bottom_discovered_by_closure_marks_original(self):
        o = Octagon.from_constraints(1, [OctConstraint.upper(0, 0.0),
                                         OctConstraint.lower(0, 1.0)])
        assert o.is_bottom()
        assert o._bottom


class TestQueries:
    def test_bounds_and_box(self):
        o = Octagon.from_constraints(2, [OctConstraint.upper(0, 3.0),
                                         OctConstraint.lower(0, -1.0)])
        assert o.bounds(0) == (-1.0, 3.0)
        assert o.bounds(1) == (-INF, INF)

    def test_relational_bound_linexpr(self):
        o = Octagon.from_constraints(2, [OctConstraint.diff(0, 1, 2.0),
                                         OctConstraint.diff(1, 0, -1.0)])
        lo, hi = o.bound_linexpr(LinExpr({0: 1.0, 1: -1.0}))
        # 1 <= x - y <= 2 even though neither variable is bounded.
        assert (lo, hi) == (1.0, 2.0)

    def test_to_constraints_roundtrip(self):
        o = Octagon.from_box([(0.0, 1.0), (2.0, 3.0)])
        cons = o.to_constraints()
        p = Octagon.from_constraints(2, cons)
        assert p.is_eq(o)

    def test_contains_point(self):
        o = Octagon.from_box([(0.0, 2.0), (0.0, 2.0)]).meet_constraint(
            OctConstraint.sum(0, 1, 3.0))
        assert o.contains_point([1.0, 1.0])
        assert not o.contains_point([2.0, 2.0])  # violates x + y <= 3
        assert not Octagon.bottom(2).contains_point([0.0, 0.0])

    def test_sat_constraint(self):
        o = Octagon.from_box([(0.0, 1.0)])
        assert o.sat_constraint(OctConstraint.upper(0, 1.0))
        assert o.sat_constraint(OctConstraint.upper(0, 5.0))
        assert not o.sat_constraint(OctConstraint.upper(0, 0.5))

    def test_repr(self):
        assert "bottom" in repr(Octagon.bottom(1))
        assert "kind=top" in repr(Octagon.top(1))


class TestDimensions:
    def test_add_dimensions(self):
        o = Octagon.from_box([(1.0, 2.0)])
        p = o.add_dimensions(2)
        assert p.n == 3
        assert p.bounds(0) == (1.0, 2.0)
        assert p.bounds(2) == (-INF, INF)

    def test_remove_dimensions(self):
        o = Octagon.from_box([(1.0, 2.0), (3.0, 4.0), (5.0, 6.0)])
        p = o.remove_dimensions([1])
        assert p.n == 2
        assert p.bounds(0) == (1.0, 2.0)
        assert p.bounds(1) == (5.0, 6.0)

    def test_remove_keeps_relations_of_kept_vars(self):
        o = Octagon.from_constraints(3, [OctConstraint.diff(0, 2, 1.0)])
        p = o.remove_dimensions([1])
        lo, hi = p.bound_linexpr(LinExpr({0: 1.0, 1: -1.0}))
        assert hi == 1.0

    def test_permute(self):
        o = Octagon.from_box([(1.0, 1.0), (2.0, 2.0), (3.0, 3.0)])
        p = o.permute([2, 0, 1])
        assert p.bounds(0) == (3.0, 3.0)
        assert p.bounds(1) == (1.0, 1.0)
        assert p.bounds(2) == (2.0, 2.0)

    def test_permute_rejects_non_permutation(self):
        with pytest.raises(ValueError):
            Octagon.top(2).permute([0, 0])

    def test_dimension_mismatch_rejected(self):
        with pytest.raises(ValueError):
            Octagon.top(2).join(Octagon.top(3))
