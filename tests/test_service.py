"""Tests for the batch analysis service (jobs, scheduler, cache)."""

import json
import os
import time

import pytest

from repro.service import (
    AnalysisJob,
    ResultCache,
    execute_job,
    run_batch,
    run_suite,
    suite_jobs,
)
from repro.service.cache import default_cache_root
from repro.service.job import jobs_from_files
from repro.workloads import BENCHMARKS

OK_SOURCE = "x = [0, 4]; y = x + 1; assert(y <= 5);"
FAIL_SOURCE = "x = [0, 4]; assert(x <= 3);"
UNBOUNDED_SOURCE = "assume(x >= 0); y = x;"


# ----------------------------------------------------------------------
# custom workers for scheduler robustness tests (module level so they
# pickle under any multiprocessing start method)
# ----------------------------------------------------------------------
def _slow_worker(job):
    if job.label == "slow":
        time.sleep(60)
    return execute_job(job)


def _raising_worker(job):
    raise RuntimeError(f"boom {job.label}")


def _dying_worker(job):
    os._exit(3)


def _flaky_worker(job):
    """Fails on first contact with each job, succeeds afterwards."""
    marker = os.path.join(os.environ["REPRO_TEST_FLAKY_DIR"], job.key())
    if not os.path.exists(marker):
        with open(marker, "w"):
            pass
        raise RuntimeError("transient failure")
    return execute_job(job)


# ----------------------------------------------------------------------
# job model
# ----------------------------------------------------------------------
class TestJobModel:
    def test_key_is_stable_and_normalised(self):
        a = AnalysisJob(source=OK_SOURCE, widening_thresholds=(1.0, 2.0))
        b = AnalysisJob(source=OK_SOURCE, widening_thresholds=(1, 2))
        assert a.key() == b.key()

    def test_label_does_not_affect_key(self):
        a = AnalysisJob(source=OK_SOURCE, label="a")
        b = AnalysisJob(source=OK_SOURCE, label="b")
        assert a.key() == b.key()

    def test_key_depends_on_source_and_options(self):
        base = AnalysisJob(source=OK_SOURCE)
        assert base.key() != AnalysisJob(source=FAIL_SOURCE).key()
        assert base.key() != AnalysisJob(source=OK_SOURCE,
                                         domain="interval").key()
        assert base.key() != AnalysisJob(source=OK_SOURCE,
                                         widening_delay=5).key()

    def test_execute_job_ok(self):
        job = AnalysisJob(source=OK_SOURCE, label="demo")
        result = execute_job(job)
        assert result.ok and result.outcome == "ok"
        assert result.key == job.key()
        assert result.label == "demo"
        assert result.checks_total == 1 and result.checks_verified == 1
        assert result.all_verified
        (proc,) = result.procedures
        assert proc.reachable
        bounds = dict(zip(proc.variables, proc.box))
        assert bounds["y"] == [1.0, 5.0]
        assert result.seconds > 0

    def test_execute_job_unbounded_and_failing(self):
        result = execute_job(AnalysisJob(source=UNBOUNDED_SOURCE))
        (proc,) = result.procedures
        bounds = dict(zip(proc.variables, proc.box))
        assert bounds["x"][0] == 0.0 and bounds["x"][1] is None

        result = execute_job(AnalysisJob(source=FAIL_SOURCE))
        assert result.ok and not result.all_verified

    def test_jobs_from_files(self, tmp_path):
        p1 = tmp_path / "a.mini"
        p1.write_text(OK_SOURCE)
        p2 = tmp_path / "b.mini"
        p2.write_text(FAIL_SOURCE)
        jobs = jobs_from_files([str(p1), str(p2)], domain="interval")
        assert [j.label for j in jobs] == [str(p1), str(p2)]
        assert all(j.domain == "interval" for j in jobs)


# ----------------------------------------------------------------------
# persistent result cache
# ----------------------------------------------------------------------
class TestResultCache:
    def test_put_get_roundtrip(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        job = AnalysisJob(source=OK_SOURCE, label="demo")
        result = execute_job(job)
        assert cache.put(job.key(), result)
        hit = cache.get(job.key())
        assert hit is not None and hit.cached
        assert hit == result  # `cached` excluded from equality
        assert cache.hits == 1 and cache.stores == 1

    def test_miss_on_absent(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        assert cache.get("0" * 64) is None
        assert cache.misses == 1

    def test_version_isolation_and_prune(self, tmp_path):
        job = AnalysisJob(source=OK_SOURCE)
        old = ResultCache(str(tmp_path), version="0.9.0")
        old.put(job.key(), execute_job(job))
        new = ResultCache(str(tmp_path), version="1.1.0")
        assert new.get(job.key()) is None  # different version directory
        assert new.prune_stale() == 1  # the 0.9.0 entry is swept
        assert not (tmp_path / "v0.9.0").exists()

    def test_corrupt_entry_evicted(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        job = AnalysisJob(source=OK_SOURCE)
        cache.put(job.key(), execute_job(job))
        path = cache._path(job.key())
        path.write_text("{not json")
        assert cache.get(job.key()) is None
        assert cache.evictions == 1
        assert not path.exists()

    def test_stamp_mismatch_evicted(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        job = AnalysisJob(source=OK_SOURCE)
        cache.put(job.key(), execute_job(job))
        path = cache._path(job.key())
        entry = json.loads(path.read_text())
        entry["repro_version"] = "0.0.0"
        path.write_text(json.dumps(entry))
        assert cache.get(job.key()) is None
        assert cache.evictions == 1

    def test_only_ok_results_stored(self, tmp_path):
        from repro.service.job import JobResult

        cache = ResultCache(str(tmp_path))
        bad = JobResult(key="k" * 64, label="x", domain="octagon",
                        outcome="timeout", error="too slow")
        assert not cache.put(bad.key, bad)
        assert len(cache) == 0

    def test_default_root_env(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "envcache"))
        assert default_cache_root() == str(tmp_path / "envcache")
        monkeypatch.delenv("REPRO_CACHE_DIR")
        assert default_cache_root().endswith(os.path.join(".cache", "repro"))


# ----------------------------------------------------------------------
# scheduler
# ----------------------------------------------------------------------
def _ok_jobs(n):
    return [AnalysisJob(source=OK_SOURCE + f"\nz = {i};", label=f"job{i}")
            for i in range(n)]


class TestScheduler:
    def test_inline_basic(self):
        batch = run_batch(_ok_jobs(3), workers=1)
        assert batch.all_ok and batch.workers == 1
        assert [r.label for r in batch.results] == ["job0", "job1", "job2"]
        assert batch.checks_total == 3 and batch.checks_verified == 3

    def test_parallel_preserves_input_order(self):
        batch = run_batch(_ok_jobs(6), workers=4)
        assert batch.all_ok
        assert [r.label for r in batch.results] == [f"job{i}" for i in range(6)]

    def test_timeout_isolated_from_siblings(self):
        jobs = [AnalysisJob(source=OK_SOURCE, label="slow"),
                AnalysisJob(source=OK_SOURCE, label="fast1"),
                AnalysisJob(source=OK_SOURCE, label="fast2")]
        batch = run_batch(jobs, workers=2, timeout=1.5, worker=_slow_worker)
        by_label = {r.label: r for r in batch.results}
        assert by_label["slow"].outcome == "timeout"
        assert "timeout" in by_label["slow"].error
        assert by_label["fast1"].ok and by_label["fast2"].ok

    @pytest.mark.parametrize("workers", [1, 2])
    def test_raising_worker_retried_then_error(self, workers):
        batch = run_batch(_ok_jobs(1), workers=workers, retries=1,
                          worker=_raising_worker)
        (result,) = batch.results
        assert result.outcome == "error"
        assert result.attempts == 2
        assert "boom" in result.error

    def test_worker_death_reported_as_error(self):
        batch = run_batch(_ok_jobs(2), workers=2, retries=1,
                          worker=_dying_worker)
        for result in batch.results:
            assert result.outcome == "error"
            assert result.attempts == 2
            assert "exit code" in result.error

    @pytest.mark.parametrize("workers", [1, 2])
    def test_transient_failure_recovers_on_retry(self, workers, tmp_path,
                                                 monkeypatch):
        monkeypatch.setenv("REPRO_TEST_FLAKY_DIR", str(tmp_path))
        batch = run_batch(_ok_jobs(2), workers=workers, retries=1,
                          worker=_flaky_worker)
        for result in batch.results:
            assert result.ok
            assert result.attempts == 2

    def test_error_batch_still_returns_every_job(self):
        jobs = _ok_jobs(3)
        batch = run_batch(jobs, workers=2, retries=0, worker=_raising_worker)
        assert len(batch.results) == 3
        assert not batch.all_ok
        assert batch.outcome_counts() == {"error": 3}

    def test_cache_short_circuits_second_run(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        jobs = _ok_jobs(3)
        cold = run_batch(jobs, workers=2, cache=cache)
        assert cold.cache_hits == 0 and cold.cache_misses == 3
        warm = run_batch(jobs, workers=2, cache=cache)
        assert warm.cache_hits == 3 and warm.cache_misses == 0
        assert all(r.cached for r in warm.results)
        assert [r.verdicts() for r in warm.results] == \
            [r.verdicts() for r in cold.results]
        assert warm.results == cold.results  # cached flag excluded from eq


# ----------------------------------------------------------------------
# determinism under parallelism + suite integration
# ----------------------------------------------------------------------
class TestSuiteThroughService:
    def test_suite_jobs_cover_every_benchmark(self):
        jobs = suite_jobs("small")
        assert [j.label for j in jobs] == [b.name for b in BENCHMARKS]
        assert len({j.key() for j in jobs}) == len(jobs)

    def test_parallel_and_inline_runs_identical(self):
        """jobs=4 and jobs=1 agree on every verdict and every bound."""
        inline = run_suite("small", workers=1)
        parallel = run_suite("small", workers=4)
        assert inline.all_ok and parallel.all_ok
        for seq, par in zip(inline.results, parallel.results):
            assert seq.label == par.label
            assert seq.verdicts() == par.verdicts()
            assert seq.procedures == par.procedures

    def test_suite_matches_direct_analysis(self):
        from repro.analysis import Analyzer

        bench = BENCHMARKS[0]
        batch = run_batch([bench.job("small")], workers=1)
        (result,) = batch.results
        direct = Analyzer(domain="octagon").analyze(bench.source("small"))
        assert result.checks_verified == \
            sum(1 for c in direct.checks if c.verified)
        assert result.checks_total == len(direct.checks)
