"""Property tests: lattice laws of the Octagon domain."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from dbm_strategies import coherent_dbms
from repro.core import Octagon


@st.composite
def octagons(draw, n=3):
    """Random octagons of a fixed dimension (possibly bottom/top)."""
    shape = draw(st.integers(0, 10))
    if shape == 0:
        return Octagon.top(n)
    if shape == 1:
        return Octagon.bottom(n)
    from dbm_strategies import dbm_entries, make_coherent_dbm
    entries = draw(dbm_entries(n, max_entries=18))
    return Octagon.from_matrix(make_coherent_dbm(n, entries), copy=False)


SET = settings(max_examples=50, deadline=None)


@SET
@given(octagons(), octagons())
def test_join_is_upper_bound(a, b):
    j = a.join(b)
    assert a.is_leq(j)
    assert b.is_leq(j)


@SET
@given(octagons(), octagons())
def test_meet_is_lower_bound(a, b):
    m = a.meet(b)
    assert m.is_leq(a)
    assert m.is_leq(b)


@SET
@given(octagons(), octagons())
def test_join_commutes(a, b):
    assert a.join(b).is_eq(b.join(a))


@SET
@given(octagons(), octagons())
def test_meet_commutes(a, b):
    assert a.meet(b).is_eq(b.meet(a))


@SET
@given(octagons())
def test_join_meet_idempotent(a):
    assert a.join(a).is_eq(a)
    assert a.meet(a).is_eq(a)


@SET
@given(octagons(), octagons(), octagons())
def test_join_associative(a, b, c):
    assert a.join(b).join(c).is_eq(a.join(b.join(c)))


@SET
@given(octagons(), octagons())
def test_widening_covers_join(a, b):
    """a widen b over-approximates a join b."""
    w = a.widening(b)
    assert a.join(b).is_leq(w)


@SET
@given(octagons(), octagons())
def test_narrowing_between(a, b):
    """If b <= a then b <= (a narrow b) <= a."""
    if not b.is_leq(a):
        return
    nr = a.narrowing(b)
    assert b.is_leq(nr)
    assert nr.is_leq(a)


@SET
@given(octagons())
def test_top_bottom_units(a):
    n = a.n
    top, bot = Octagon.top(n), Octagon.bottom(n)
    assert a.join(bot).is_eq(a)
    assert a.meet(top).is_eq(a)
    assert a.join(top).is_top() or a.join(top).is_eq(top)
    assert a.meet(bot).is_bottom()


@SET
@given(octagons(), octagons())
def test_inclusion_consistent_with_join(a, b):
    assert a.is_leq(b) == a.join(b).is_eq(b)


@SET
@given(octagons())
def test_is_eq_reflexive(a):
    assert a.is_eq(a)
    assert a.is_eq(a.copy())


def test_widening_terminates_on_increasing_chain():
    """Widening stabilises every strictly increasing chain in finitely
    many steps (the classic loop: bound grows by 1 each iteration)."""
    from repro.core import OctConstraint
    state = Octagon.from_box([(0.0, 0.0)])
    steps = 0
    for k in range(1, 200):
        nxt = Octagon.from_box([(0.0, float(k))])
        merged = state.join(nxt)
        if merged.is_leq(state):
            break
        state = state.widening(merged)
        steps += 1
        if state.bounds(0)[1] == float("inf"):
            break
    assert steps <= 3, f"widening took {steps} steps to stabilise"


def test_widening_partition_intersection():
    """The paper: widening induces intersection on component sets."""
    from repro.core import OctConstraint
    a = (Octagon.top(4)
         .meet_constraint(OctConstraint.diff(0, 1, 1.0))
         .meet_constraint(OctConstraint.diff(2, 3, 1.0)))
    b = Octagon.top(4).meet_constraint(OctConstraint.diff(0, 1, 2.0))
    w = a.widening(b)
    assert w.partition.support <= {0, 1}


@SET
@given(octagons(), octagons())
def test_widening_sequence_stabilises(a, b):
    """Iterating x := x widen (x join b) reaches a post-fixpoint fast."""
    x = a
    for _ in range(10):
        nxt = x.widening(x.join(b))
        if nxt.is_leq(x) and x.is_leq(nxt):
            break
        x = nxt
    else:
        raise AssertionError("widening did not stabilise within 10 steps")
    assert b.is_leq(x)
