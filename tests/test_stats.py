"""Tests for the instrumentation layer."""

import time

import pytest

from repro.core import Octagon, OctConstraint
from repro.core.stats import (
    ClosureRecord,
    OpCounter,
    StatsCollector,
    active_collector,
    bump,
    collecting,
    record_closure,
    timed_op,
)


class TestCollector:
    def test_nesting_restores_previous(self):
        assert active_collector() is None
        with collecting() as outer:
            assert active_collector() is outer
            with collecting() as inner:
                assert active_collector() is inner
            assert active_collector() is outer
        assert active_collector() is None

    def test_timed_op_accumulates(self):
        with collecting() as col:
            with timed_op("join"):
                time.sleep(0.001)
            with timed_op("join"):
                pass
        assert col.op_calls["join"] == 2
        assert col.op_seconds["join"] > 0

    def test_no_collector_is_noop(self):
        with timed_op("whatever"):
            pass
        record_closure(3, "dense", 0.1)

    def test_closure_stats(self):
        col = StatsCollector()
        col.record_closure(ClosureRecord(5, "dense", 0.1))
        col.record_closure(ClosureRecord(9, "decomposed", 0.2, components=3))
        col.record_closure(ClosureRecord(2, "incremental", 0.05))
        stats = col.closure_stats()
        assert stats == {"nmin": 5, "nmax": 9, "closures": 2, "incremental": 1}
        assert col.closure_seconds == 0.1 + 0.2  # incremental excluded
        assert len(col.full_closures) == 2

    def test_empty_stats(self):
        assert StatsCollector().closure_stats()["closures"] == 0


class TestCapture:
    def test_closure_inputs_captured(self):
        with collecting() as col:
            col.capture_closure_inputs = True
            o = Octagon.from_constraints(3, [OctConstraint.diff(0, 1, 2.0)])
            o.closure()
        assert len(col.closure_inputs) == 1
        mat, blocks = col.closure_inputs[0]
        assert mat.shape == (6, 6)
        assert blocks == [[0, 1]]

    def test_capture_off_by_default(self):
        with collecting() as col:
            Octagon.from_constraints(2, [OctConstraint.upper(0, 1.0)]).closure()
        assert col.closure_inputs == []

    def test_octagon_close_records_event(self):
        with collecting() as col:
            Octagon.from_constraints(2, [OctConstraint.upper(0, 1.0)]).closure()
        assert col.closure_stats()["closures"] == 1
        assert col.closures[0].n == 2


class TestSelfTime:
    """``timed_op`` nesting: inclusive vs. self time (the Fig 8 fix).

    Before the split, a nested operator's wall time was charged to both
    itself and its parent, so summing the per-operator column exceeded
    the measured total -- the decomposition did not decompose.
    """

    def test_nested_op_not_double_counted(self):
        with collecting() as col:
            with timed_op("outer"):
                time.sleep(0.002)
                with timed_op("inner"):
                    time.sleep(0.004)
        # Inclusive: outer covers inner.
        assert col.op_seconds["outer"] > col.op_seconds["inner"]
        # Exclusive: outer's self time does NOT include inner.
        assert col.op_self_seconds["outer"] < col.op_seconds["inner"]
        assert col.op_self_seconds["inner"] == pytest.approx(
            col.op_seconds["inner"])

    def test_decomposition_sums_to_total(self):
        """sum(self times) == elapsed of the outermost ops (Fig 8)."""
        with collecting() as col:
            with timed_op("a"):
                with timed_op("b"):
                    with timed_op("c"):
                        time.sleep(0.002)
                with timed_op("b"):
                    time.sleep(0.001)
        assert sum(col.op_self_seconds.values()) == pytest.approx(
            col.op_seconds["a"], rel=1e-6)
        assert col.total_seconds == pytest.approx(col.op_seconds["a"],
                                                  rel=1e-6)

    def test_sibling_ops_sum_exactly(self):
        with collecting() as col:
            with timed_op("parent"):
                for _ in range(3):
                    with timed_op("child"):
                        time.sleep(0.001)
        assert col.op_calls["child"] == 3
        assert (col.op_self_seconds["parent"] + col.op_seconds["child"]
                == pytest.approx(col.op_seconds["parent"], rel=1e-6))

    def test_leaf_op_self_equals_inclusive(self):
        with collecting() as col:
            with timed_op("leaf"):
                pass
        assert col.op_self_seconds["leaf"] == col.op_seconds["leaf"]


class TestNestedCollectors:
    """Counter semantics when ``collecting()`` blocks nest."""

    def test_inner_does_not_steal_outer_bumps(self):
        with collecting() as outer:
            bump("evt", 1)
            with collecting() as inner:
                bump("evt", 2)
            bump("evt", 4)
        assert inner.counters["evt"] == 2
        # The outer collector saw every event, including the inner span.
        assert outer.counters["evt"] == 7

    def test_merged_counters_include_inner_global_deltas(self):
        import numpy as np

        from repro.core.cow import CowMat

        def churn():
            mat = CowMat(np.zeros((4, 4)))
            clone = mat.clone()
            clone.written()  # shared, so this pays a materialisation

        with collecting() as outer:
            churn()
            with collecting() as inner:
                churn()
            churn()
        assert inner.merged_counters()["cow_clones"] == 1
        # Outer observes all three churns -- the inner collector did not
        # steal the middle one's global-source deltas.
        assert outer.merged_counters()["cow_clones"] == 3
        assert outer.merged_counters()["cow_materializations"] == 3

    def test_timings_go_to_innermost_only(self):
        with collecting() as outer:
            with collecting() as inner:
                with timed_op("join"):
                    pass
        assert "join" in inner.op_seconds
        assert outer.op_seconds == {}

    def test_counter_summary_enumerates_registry(self):
        """The summary is registry-driven: every declared counter is
        present (zero-filled) without a hand-maintained key list."""
        from repro.obs import metrics

        with collecting() as col:
            bump("cow_clones", 3)
        summary = col.counter_summary()
        assert set(metrics.REGISTRY.counter_names()) <= set(summary)
        assert summary["cow_clones"] == 3
        # Legacy names all survive the registry migration.
        for name in ("copies_avoided", "workspace_hits",
                     "closure_cache_hits", "plans_compiled", "plan_exec",
                     "constraints_batched", "closures_avoided",
                     "budget_checkpoints", "budget_interrupts",
                     "paranoid_checks", "integrity_failures",
                     "degradations", "faults_injected"):
            assert name in summary, name


class TestOpCounter:
    def test_tick_and_reset(self):
        counter = OpCounter()
        counter.tick()
        counter.tick(10)
        assert counter.mins == 11
        counter.reset()
        assert counter.mins == 0
