"""Tests for the instrumentation layer."""

import time

from repro.core import Octagon, OctConstraint
from repro.core.stats import (
    ClosureRecord,
    OpCounter,
    StatsCollector,
    active_collector,
    collecting,
    record_closure,
    timed_op,
)


class TestCollector:
    def test_nesting_restores_previous(self):
        assert active_collector() is None
        with collecting() as outer:
            assert active_collector() is outer
            with collecting() as inner:
                assert active_collector() is inner
            assert active_collector() is outer
        assert active_collector() is None

    def test_timed_op_accumulates(self):
        with collecting() as col:
            with timed_op("join"):
                time.sleep(0.001)
            with timed_op("join"):
                pass
        assert col.op_calls["join"] == 2
        assert col.op_seconds["join"] > 0

    def test_no_collector_is_noop(self):
        with timed_op("whatever"):
            pass
        record_closure(3, "dense", 0.1)

    def test_closure_stats(self):
        col = StatsCollector()
        col.record_closure(ClosureRecord(5, "dense", 0.1))
        col.record_closure(ClosureRecord(9, "decomposed", 0.2, components=3))
        col.record_closure(ClosureRecord(2, "incremental", 0.05))
        stats = col.closure_stats()
        assert stats == {"nmin": 5, "nmax": 9, "closures": 2, "incremental": 1}
        assert col.closure_seconds == 0.1 + 0.2  # incremental excluded
        assert len(col.full_closures) == 2

    def test_empty_stats(self):
        assert StatsCollector().closure_stats()["closures"] == 0


class TestCapture:
    def test_closure_inputs_captured(self):
        with collecting() as col:
            col.capture_closure_inputs = True
            o = Octagon.from_constraints(3, [OctConstraint.diff(0, 1, 2.0)])
            o.closure()
        assert len(col.closure_inputs) == 1
        mat, blocks = col.closure_inputs[0]
        assert mat.shape == (6, 6)
        assert blocks == [[0, 1]]

    def test_capture_off_by_default(self):
        with collecting() as col:
            Octagon.from_constraints(2, [OctConstraint.upper(0, 1.0)]).closure()
        assert col.closure_inputs == []

    def test_octagon_close_records_event(self):
        with collecting() as col:
            Octagon.from_constraints(2, [OctConstraint.upper(0, 1.0)]).closure()
        assert col.closure_stats()["closures"] == 1
        assert col.closures[0].n == 2


class TestOpCounter:
    def test_tick_and_reset(self):
        counter = OpCounter()
        counter.tick()
        counter.tick(10)
        assert counter.mins == 11
        counter.reset()
        assert counter.mins == 0
