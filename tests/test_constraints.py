"""Tests for the constraint language and its DBM encoding."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.bounds import INF
from repro.core.constraints import (
    LinExpr,
    OctConstraint,
    constraint_of_cell,
    constraints_from_dbm,
    dbm_cells,
)
from repro.core.densemat import new_top


class TestOctConstraintValidation:
    def test_rejects_zero_coeff_i(self):
        with pytest.raises(ValueError):
            OctConstraint(0, 0, 0, 0, 1.0)

    def test_rejects_unary_with_distinct_vars(self):
        with pytest.raises(ValueError):
            OctConstraint(0, 1, 1, 0, 1.0)

    def test_rejects_binary_with_same_var(self):
        with pytest.raises(ValueError):
            OctConstraint(0, 1, 0, 1, 1.0)

    def test_str(self):
        assert str(OctConstraint.sum(0, 1, 5.0)) == "+v0 +v1 <= 5.0"
        assert str(OctConstraint.upper(2, 3.0)) == "+v2 <= 3.0"


class TestDbmEncoding:
    def test_paper_figure1_sum(self):
        # x + y <= 5 with x = v0, y = v1: stored at O[1, 2] (y+ - x-)
        # and its mirror O[3, 0] (x+ - y-).
        cells = dbm_cells(OctConstraint.sum(0, 1, 5.0))
        assert set((r, s) for r, s, _ in cells) == {(1, 2), (3, 0)}
        assert all(c == 5.0 for _, _, c in cells)

    def test_unary_upper(self):
        # v <= c becomes 2v <= 2c at O[2v+1, 2v] (self-mirror: one cell).
        cells = dbm_cells(OctConstraint.upper(1, 4.0))
        assert cells == [(3, 2, 8.0)]

    def test_unary_lower(self):
        cells = dbm_cells(OctConstraint.lower(0, -3.0))
        assert cells == [(0, 1, 6.0)]

    def test_difference(self):
        # v0 - v1 <= 2: vhat_0 - vhat_2 <= 2 -> O[2, 0].
        cells = dbm_cells(OctConstraint.diff(0, 1, 2.0))
        assert set((r, s) for r, s, _ in cells) == {(2, 0), (1, 3)}

    @given(st.integers(0, 4), st.integers(0, 4),
           st.sampled_from([-1, 1]), st.sampled_from([-1, 0, 1]),
           st.integers(-10, 10))
    def test_cell_roundtrip(self, i, j, a, b, c):
        """constraint -> cells -> constraint is the identity (up to the
        symmetric binary form)."""
        if b == 0:
            cons = OctConstraint(i, a, i, 0, float(c))
        else:
            if i == j:
                return
            cons = OctConstraint(i, a, j, b, float(c))
        r, s, bound = dbm_cells(cons)[0]
        back = constraint_of_cell(r, s, bound)
        # Compare as normalised term maps.
        def terms(k):
            out = {k.i: k.coeff_i}
            if k.coeff_j:
                out[k.j] = out.get(k.j, 0) + k.coeff_j
            return out
        assert terms(back) == terms(cons)
        assert back.bound == cons.bound

    def test_extraction_skips_trivial(self):
        m = new_top(3)
        assert constraints_from_dbm(m) == []

    def test_extraction_reports_each_once(self):
        m = new_top(2)
        for r, s, c in dbm_cells(OctConstraint.sum(0, 1, 5.0)):
            m[r, s] = c
        cons = constraints_from_dbm(m)
        assert len(cons) == 1
        assert str(cons[0]) in ("+v0 +v1 <= 5.0", "+v1 +v0 <= 5.0")


class TestConstraintEvaluation:
    def test_binary(self):
        cons = OctConstraint.sum(0, 1, 5.0)
        assert cons.evaluate([2.0, 3.0])
        assert not cons.evaluate([3.0, 3.0])

    def test_unary(self):
        cons = OctConstraint.lower(0, 1.0)  # v0 >= 1
        assert cons.evaluate([1.0])
        assert not cons.evaluate([0.0])


class TestLinExpr:
    def test_builders(self):
        e = LinExpr.of_var(2).scaled(3.0).plus(LinExpr.of_const(1.0))
        assert e.coeffs == {2: 3.0}
        assert e.const == 1.0

    def test_minus_cancels(self):
        e = LinExpr.of_var(0).minus(LinExpr.of_var(0))
        assert e.coeffs == {}

    def test_interval_finite(self):
        e = LinExpr({0: 2.0, 1: -1.0}, 3.0)
        bounds = {0: (1.0, 2.0), 1: (0.0, 5.0)}
        lo, hi = e.interval(lambda v: bounds[v])
        assert (lo, hi) == (2 * 1 - 5 + 3, 2 * 2 - 0 + 3)

    def test_interval_with_infinities(self):
        e = LinExpr({0: 1.0}, 0.0)
        lo, hi = e.interval(lambda v: (-INF, 4.0))
        assert lo == -INF and hi == 4.0
        e2 = LinExpr({0: -2.0}, 1.0)
        lo, hi = e2.interval(lambda v: (-INF, 4.0))
        assert lo == -7.0 and hi == INF

    @given(st.dictionaries(st.integers(0, 3), st.integers(-3, 3), max_size=3),
           st.integers(-5, 5))
    def test_evaluate_in_interval(self, coeffs, const):
        e = LinExpr({k: float(v) for k, v in coeffs.items() if v}, float(const))
        point = [1.5, -2.0, 0.0, 3.0]
        bounds = {v: (point[v], point[v]) for v in range(4)}
        lo, hi = e.interval(lambda v: bounds[v])
        val = e.evaluate(point)
        assert lo - 1e-9 <= val <= hi + 1e-9

    def test_is_octagonal_unit(self):
        assert LinExpr({0: 1.0, 2: -1.0}).is_octagonal_unit()
        assert not LinExpr({0: 2.0}).is_octagonal_unit()
        assert not LinExpr({0: 1.0, 1: 1.0, 2: 1.0}).is_octagonal_unit()
