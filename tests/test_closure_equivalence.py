"""The central differential property: every closure implementation --
reference full-DBM scalar (paper Algorithm 1), vectorised FW, APRON's
half-matrix Algorithm 2, the new dense Algorithm 3 (scalar and
vectorised), the sparse closure and the decomposed closure -- computes
the same result on every input."""

import numpy as np
from hypothesis import given, settings

from dbm_strategies import block_dbms, coherent_dbms
from repro.core.closure_apron import closure_apron
from repro.core.closure_decomposed import closure_decomposed
from repro.core.closure_dense import closure_dense_numpy, closure_dense_scalar
from repro.core.closure_reference import closure_full_numpy, closure_full_scalar
from repro.core.closure_sparse import closure_sparse
from repro.core.densemat import matrices_equal
from repro.core.halfmat import HalfMat
from repro.core.partition import Partition

TOL = 1e-9


def _reference(m):
    ref = m.copy()
    empty = closure_full_scalar(ref)
    return empty, ref


@settings(max_examples=60, deadline=None)
@given(coherent_dbms())
def test_fw_numpy_matches_reference(m):
    empty, ref = _reference(m)
    out = m.copy()
    assert closure_full_numpy(out) == empty
    if not empty:
        assert matrices_equal(ref, out, tol=TOL)


@settings(max_examples=60, deadline=None)
@given(coherent_dbms())
def test_apron_matches_reference(m):
    empty, ref = _reference(m)
    half = HalfMat.from_full(m)
    assert closure_apron(half) == empty
    if not empty:
        assert matrices_equal(ref, half.to_full(), tol=TOL)


@settings(max_examples=60, deadline=None)
@given(coherent_dbms())
def test_dense_scalar_matches_reference(m):
    empty, ref = _reference(m)
    half = HalfMat.from_full(m)
    assert closure_dense_scalar(half) == empty
    if not empty:
        assert matrices_equal(ref, half.to_full(), tol=TOL)


@settings(max_examples=60, deadline=None)
@given(coherent_dbms())
def test_dense_numpy_matches_reference(m):
    empty, ref = _reference(m)
    out = m.copy()
    assert closure_dense_numpy(out) == empty
    if not empty:
        assert matrices_equal(ref, out, tol=TOL)


@settings(max_examples=60, deadline=None)
@given(coherent_dbms())
def test_sparse_matches_reference(m):
    empty, ref = _reference(m)
    out = m.copy()
    assert closure_sparse(out) == empty
    if not empty:
        assert matrices_equal(ref, out, tol=TOL)


@settings(max_examples=60, deadline=None)
@given(block_dbms())
def test_decomposed_matches_reference(data):
    m, blocks = data
    empty, ref = _reference(m)
    out = m.copy()
    part = Partition(m.shape[0] // 2, blocks)
    got_empty, exact = closure_decomposed(out, part)
    assert got_empty == empty
    if not empty:
        assert matrices_equal(ref, out, tol=TOL)
        # The returned partition is the exact one of the closed matrix.
        assert exact == Partition.from_matrix(out)


@settings(max_examples=40, deadline=None)
@given(block_dbms())
def test_decomposed_with_coarser_partition(data):
    """A coarser (over-approximated) partition must not change results."""
    m, blocks = data
    n = m.shape[0] // 2
    empty, ref = _reference(m)
    out = m.copy()
    coarse = Partition.single_block(n)
    got_empty, _ = closure_decomposed(out, coarse)
    assert got_empty == empty
    if not empty:
        assert matrices_equal(ref, out, tol=TOL)
