"""Parser tests: grammar coverage, precedence, errors and the
pretty-printer round trip."""

import pytest

from repro.frontend import (
    Assert, Assign, AssignInterval, Assume, BinOp, Block, BoolOp, Cmp,
    Havoc, If, Not, Num, ParseError, Skip, Var, While, parse_program,
    pretty,
)
from repro.frontend.ast_nodes import collect_variables
from repro.frontend.parser import parse_procedure


def main_stmts(source):
    return parse_program(source).procedures[0].body.statements


class TestStatements:
    def test_assignment(self):
        (stmt,) = main_stmts("x = y + 1;")
        assert isinstance(stmt, Assign)
        assert stmt.target == "x"
        assert isinstance(stmt.expr, BinOp)

    def test_interval_assignment(self):
        (stmt,) = main_stmts("x = [0, 10];")
        assert isinstance(stmt, AssignInterval)
        assert (stmt.lo, stmt.hi) == (0.0, 10.0)

    def test_interval_with_negative_constant(self):
        (stmt,) = main_stmts("x = [-3, 2 + 1];")
        assert (stmt.lo, stmt.hi) == (-3.0, 3.0)

    def test_havoc_assume_assert_skip(self):
        stmts = main_stmts("havoc(x); assume(x > 0); assert(x >= 0); skip;")
        assert [type(s) for s in stmts] == [Havoc, Assume, Assert, Skip]

    def test_if_else(self):
        (stmt,) = main_stmts("if (x < 1) { y = 1; } else { y = 2; }")
        assert isinstance(stmt, If)
        assert stmt.else_body is not None

    def test_else_if_chain(self):
        (stmt,) = main_stmts(
            "if (x == 0) { y = 0; } else if (x == 1) { y = 1; } else { y = 2; }")
        inner = stmt.else_body.statements[0]
        assert isinstance(inner, If)
        assert inner.else_body is not None

    def test_while(self):
        (stmt,) = main_stmts("while (i < n) { i = i + 1; }")
        assert isinstance(stmt, While)


class TestExpressions:
    def test_precedence(self):
        (stmt,) = main_stmts("x = 1 + 2 * 3;")
        assert isinstance(stmt.expr, BinOp) and stmt.expr.op == "+"
        assert stmt.expr.right.op == "*"

    def test_left_associativity(self):
        (stmt,) = main_stmts("x = a - b - c;")
        assert stmt.expr.op == "-"
        assert isinstance(stmt.expr.left, BinOp)
        assert isinstance(stmt.expr.right, Var)

    def test_parenthesised_arithmetic_in_comparison(self):
        (stmt,) = main_stmts("assume((x + 1) < y);")
        assert isinstance(stmt.cond, Cmp)

    def test_division_folds_to_multiplication(self):
        (stmt,) = main_stmts("x = y / 2;")
        assert stmt.expr.op == "*"
        assert stmt.expr.right.value == 0.5

    def test_boolean_precedence(self):
        (stmt,) = main_stmts("assume(a < 1 && b < 2 || c < 3);")
        assert isinstance(stmt.cond, BoolOp) and stmt.cond.op == "||"
        assert stmt.cond.left.op == "&&"

    def test_negation(self):
        (stmt,) = main_stmts("assume(!(x < 1));")
        assert isinstance(stmt.cond, Not)

    def test_boolean_literals(self):
        stmts = main_stmts("assume(true); assume(false);")
        assert stmts[0].cond.value is True
        assert stmts[1].cond.value is False


class TestPrograms:
    def test_implicit_main(self):
        program = parse_program("x = 1;")
        assert [p.name for p in program.procedures] == ["main"]

    def test_multi_procedure(self):
        program = parse_program("proc f { x = 1; } proc g { y = 2; }")
        assert [p.name for p in program.procedures] == ["f", "g"]
        assert program.procedure("g").variables == ["y"]

    def test_variable_collection_order(self):
        proc = parse_program("x = 1; y = x + z;").procedures[0]
        assert proc.variables == ["x", "y", "z"]

    def test_parse_procedure_helper(self):
        proc = parse_procedure("a = 1;", name="solo")
        assert proc.name == "solo"


class TestErrors:
    @pytest.mark.parametrize("bad", [
        "x = ;", "x = 1", "if x < 1 { }", "while (x) { }",
        "x = [y, 2];", "x = 1 % 2;", "x = y / 0;", "proc { }",
        "assume(x <);", "1 = x;",
    ])
    def test_rejects_malformed(self, bad):
        with pytest.raises(ParseError):
            parse_program(bad)

    def test_error_message_has_position(self):
        # '@' is rejected by the lexer; both front-end errors are
        # ValueErrors with positions.
        with pytest.raises(ValueError) as exc:
            parse_program("x = @;")
        assert "line" in str(exc.value)


class TestPrettyRoundtrip:
    SOURCES = [
        "x = 1;",
        "x = [0, 5];",
        "havoc(q);",
        "assume(x + 1 <= y * 2);",
        "assert(a >= b);",
        "if (x < 1 && y > 2) { z = 3; } else { skip; }",
        "while (i <= n) { i = i + 1; s = s + i; }",
        "proc f { x = -1; } proc g { while (true) { x = x - 1; } }",
    ]

    @pytest.mark.parametrize("source", SOURCES)
    def test_roundtrip(self, source):
        program = parse_program(source)
        printed = pretty(program)
        reparsed = parse_program(printed)
        assert pretty(reparsed) == printed
