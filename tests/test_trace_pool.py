"""Pool-wide distributed traces and the HTTP observability facade.

The observability-plane PR's contract, end to end:

* a cold pooled ``analyze`` exports a Chrome trace in which the worker
  *process's* spans (fixpoint, kernel work) have been re-parented under
  the daemon's ``serve_request`` span -- same pid, same handler-thread
  lane, time-contained, stamped with the request's trace id and the
  originating ``worker_pid``;
* a ``serve_worker_kill`` fault leaves a ``serve_job_retry`` marker on
  the same trace, and the respawned attempt's spans land under the same
  request;
* ``GET /metrics`` is valid Prometheus text, ``/healthz`` flips to 503
  when the circuit breaker opens, ``/statusz`` and ``/requestz`` carry
  the worker table, RED rollups and per-request trace ids;
* ``python -m repro top`` renders a frame from ``/statusz``.
"""

import io
import json
import os
import threading
import urllib.error
import urllib.request

import pytest

from repro.obs import trace
from repro.obs.console import fetch_status, render_status, run_top
from repro.obs.metrics import validate_prometheus_text
from repro.serve import AnalysisServer, ServeClient
from repro.testing import faults

TWO_PROCS = """\
proc f {
  x = [0, 4];
  y = x + 1;
  assert(y <= 5);
}
proc g {
  i = 0;
  while (i < 9) { i = i + 1; }
  assert(i >= 9);
}
"""


@pytest.fixture(autouse=True)
def disarm_faults():
    yield
    faults.clear()


@pytest.fixture
def traced_pool_server(tmp_path):
    """A pooled daemon with tracing armed in the daemon process."""
    trace.reset()
    trace.enable()
    srv = AnalysisServer(str(tmp_path / "serve.sock"), workers=2, pool=2,
                         use_cache=False)
    srv.start()
    thread = threading.Thread(target=srv.serve_forever, daemon=True)
    thread.start()
    try:
        yield srv
    finally:
        srv.stop()
        thread.join(timeout=30)
        trace.disable()
        trace.reset()
    assert not thread.is_alive()


def _spans(events, name):
    return [e for e in events if e.get("ph") == "X" and e.get("name") == name]


def _request_span(events, cmd="analyze"):
    matches = [e for e in _spans(events, "serve_request")
               if (e.get("args") or {}).get("cmd") == cmd]
    assert matches, "no serve_request span for %r" % cmd
    return matches[-1]


def _contained(inner, outer, slack_us=1.0):
    return (inner["pid"] == outer["pid"]
            and inner["tid"] == outer["tid"]
            and inner["ts"] >= outer["ts"] - slack_us
            and inner["ts"] + inner["dur"]
                <= outer["ts"] + outer["dur"] + slack_us)


class TestPoolTraceRoundTrip:
    def test_cold_pooled_request_nests_worker_spans(self, traced_pool_server,
                                                    tmp_path):
        with ServeClient(traced_pool_server.socket_path) as client:
            response = client.analyze(TWO_PROCS, label="traced")
            assert response["ok"]
            assert response["tiers"]["computed"] == 2

        out = tmp_path / "trace.json"
        trace.export(str(out))
        with open(out, encoding="utf-8") as fh:
            document = json.load(fh)
        assert trace.validate_chrome_trace(document) > 0

        events = document["traceEvents"]
        request = _request_span(events)
        trace_id = request["args"]["trace_id"]
        assert trace_id

        worker_spans = [e for e in events if e.get("ph") == "X"
                        and (e.get("args") or {}).get("worker_pid")
                        not in (None, os.getpid())]
        # The fixpoint ran in a pool worker process, yet its spans (and
        # the kernel work under them) sit inside the daemon-side
        # serve_request interval on the handler thread's lane.
        names = {e["name"] for e in worker_spans}
        assert "fixpoint" in names
        assert names & {"closure", "closure_inc", "recompute", "loop"}
        for span in worker_spans:
            assert _contained(span, request), span["name"]
            assert span["args"]["trace_id"] == trace_id

    def test_worker_kill_retry_stays_on_one_trace(self, traced_pool_server,
                                                  tmp_path):
        faults.inject("serve_worker_kill")
        with ServeClient(traced_pool_server.socket_path) as client:
            response = client.analyze(TWO_PROCS, label="victim")
            assert response["ok"]
            assert response["result"]["outcome"] == "ok"
            assert client.stats()["counters"]["worker_crashes"] >= 1

        out = tmp_path / "trace.json"
        trace.export(str(out))
        events = trace.load(str(out))
        request = _request_span(events)
        trace_id = request["args"]["trace_id"]

        retries = [e for e in _spans(events, "serve_job_retry")
                   if (e.get("args") or {}).get("trace_id") == trace_id]
        assert retries, "retry marker missing from the request's trace"
        assert retries[0]["args"]["cause"] == "worker-died"
        assert retries[0]["tid"] == request["tid"]

        # The respawned attempt's fixpoint is adopted under the SAME
        # request: one trace tells the whole kill-and-retry story.
        fixpoints = [e for e in _spans(events, "fixpoint")
                     if (e.get("args") or {}).get("trace_id") == trace_id]
        assert fixpoints
        assert all(_contained(f, request) for f in fixpoints)


# ----------------------------------------------------------------------
# HTTP facade
# ----------------------------------------------------------------------
def _get(port, path):
    req = urllib.request.Request(f"http://127.0.0.1:{port}{path}")
    try:
        with urllib.request.urlopen(req, timeout=10) as response:
            return response.status, response.read().decode("utf-8")
    except urllib.error.HTTPError as exc:
        return exc.code, exc.read().decode("utf-8")


@pytest.fixture
def http_server(tmp_path):
    srv = AnalysisServer(str(tmp_path / "serve.sock"), workers=2, pool=0,
                         use_cache=False, http_port=0, slow_request_ms=None)
    srv.start()
    thread = threading.Thread(target=srv.serve_forever, daemon=True)
    thread.start()
    yield srv
    srv.stop()
    thread.join(timeout=30)
    assert not thread.is_alive()


class TestHTTPFacade:
    def test_metrics_is_valid_prometheus_text(self, http_server):
        with ServeClient(http_server.socket_path) as client:
            client.analyze(TWO_PROCS)
        status, body = _get(http_server.http_port, "/metrics")
        assert status == 200
        assert validate_prometheus_text(body) > 0
        assert "repro_serve_requests_total" in body
        assert "repro_serve_request_seconds" in body

    def test_healthz_ok_and_statusz_shape(self, http_server):
        status, body = _get(http_server.http_port, "/healthz")
        assert status == 200
        assert json.loads(body)["ok"] is True

        with ServeClient(http_server.socket_path) as client:
            client.analyze(TWO_PROCS, label="shape")
        status, body = _get(http_server.http_port, "/statusz")
        assert status == 200
        doc = json.loads(body)
        assert doc["requests"] >= 1
        assert doc["red"]["commands"]["analyze"]["count"] >= 1
        assert "counters" in doc and "lru_entries" in doc

    def test_requestz_carries_trace_ids(self, http_server):
        with ServeClient(http_server.socket_path) as client:
            client.analyze(TWO_PROCS, label="ringed")
        status, body = _get(http_server.http_port, "/requestz")
        assert status == 200
        recent = json.loads(body)["recent"]
        analyze = [r for r in recent if r["cmd"] == "analyze"]
        assert analyze
        assert analyze[-1]["label"] == "ringed"
        assert analyze[-1]["ok"] is True
        assert len(analyze[-1]["trace_id"]) == 16
        assert analyze[-1]["tiers"]["computed"] == 2

    def test_unknown_route_is_structured_404(self, http_server):
        status, body = _get(http_server.http_port, "/nope")
        assert status == 404
        assert "/metrics" in json.loads(body)["routes"]

    def test_healthz_reflects_open_breaker(self, tmp_path):
        srv = AnalysisServer(str(tmp_path / "serve.sock"), workers=2, pool=1,
                             worker_restarts=1, use_cache=False, http_port=0)
        srv.start()
        thread = threading.Thread(target=srv.serve_forever, daemon=True)
        thread.start()
        try:
            faults.inject("serve_worker_kill")
            with ServeClient(srv.socket_path) as client:
                # One crash trips the threshold-1 breaker; the retry
                # still answers (inline fallback)...
                response = client.analyze(TWO_PROCS)
                assert response["ok"]
            # ...and the facade now reports not-ready.
            status, body = _get(srv.http_port, "/healthz")
            assert status == 503
            doc = json.loads(body)
            assert doc["ok"] is False
            assert doc["breaker_open"] is True
        finally:
            srv.stop()
            thread.join(timeout=30)
        assert not thread.is_alive()


# ----------------------------------------------------------------------
# ops console
# ----------------------------------------------------------------------
class TestConsole:
    def test_render_status_from_live_daemon(self, http_server):
        with ServeClient(http_server.socket_path) as client:
            client.analyze(TWO_PROCS)
        doc = fetch_status(f"http://127.0.0.1:{http_server.http_port}")
        frame = render_status(doc)
        assert "repro serve" in frame
        assert "requests=" in frame
        assert "analyze" in frame  # RED table row

    def test_run_top_once(self, http_server):
        out = io.StringIO()
        code = run_top(f"http://127.0.0.1:{http_server.http_port}",
                       once=True, out=out)
        assert code == 0
        assert "repro serve" in out.getvalue()
        assert "\x1b[" not in out.getvalue()  # --once stays ANSI-free

    def test_run_top_unreachable_is_nonzero(self):
        out = io.StringIO()
        code = run_top("http://127.0.0.1:9", once=True, out=out)
        assert code == 1
        assert "cannot reach" in out.getvalue()
