"""Tests for the package CLI (python -m repro)."""

import subprocess
import sys

import pytest


def run_cli(*args, **kwargs):
    return subprocess.run([sys.executable, "-m", "repro", *args],
                          capture_output=True, text=True, timeout=300,
                          **kwargs)


class TestAnalyze:
    def test_analyze_file(self, tmp_path):
        src = tmp_path / "p.mini"
        src.write_text("x = [0, 4]; y = x + 1; assert(y <= 5);")
        proc = run_cli("analyze", str(src))
        assert proc.returncode == 0, proc.stderr
        assert "VERIFIED" in proc.stdout
        assert "y in [1, 5]" in proc.stdout

    def test_analyze_failure_exit_code(self, tmp_path):
        src = tmp_path / "p.mini"
        src.write_text("x = [0, 4]; assert(x <= 3);")
        proc = run_cli("analyze", str(src))
        assert proc.returncode == 1
        assert "FAILED TO PROVE" in proc.stdout

    @pytest.mark.parametrize("domain", ["interval", "zone", "pentagon"])
    def test_other_domains(self, tmp_path, domain):
        src = tmp_path / "p.mini"
        src.write_text("x = 1; assert(x == 1);")
        proc = run_cli("analyze", str(src), "--domain", domain)
        assert proc.returncode == 0, proc.stderr

    def test_analyze_multiple_files(self, tmp_path):
        ok = tmp_path / "ok.mini"
        ok.write_text("x = [0, 4]; y = x + 1; assert(y <= 5);")
        ok2 = tmp_path / "ok2.mini"
        ok2.write_text("z = 3; assert(z == 3);")
        proc = run_cli("analyze", str(ok), str(ok2), "--jobs", "1")
        assert proc.returncode == 0, proc.stderr
        assert f"== {ok} ==" in proc.stdout
        assert f"== {ok2} ==" in proc.stdout
        assert "2/2 assertions verified over 2 files" in proc.stdout

    def test_analyze_multiple_files_exit_code(self, tmp_path):
        ok = tmp_path / "ok.mini"
        ok.write_text("x = 1; assert(x == 1);")
        bad = tmp_path / "bad.mini"
        bad.write_text("x = [0, 4]; assert(x <= 3);")
        proc = run_cli("analyze", str(ok), str(bad), "--jobs", "1")
        assert proc.returncode == 1
        assert "FAILED TO PROVE" in proc.stdout


class TestPrecondition:
    def test_precondition(self, tmp_path):
        src = tmp_path / "p.mini"
        src.write_text("assume(x >= 2); y = x;")
        proc = run_cli("precondition", str(src))
        assert proc.returncode == 0, proc.stderr
        assert "-x <= -2" in proc.stdout

    def test_unreachable_exit(self, tmp_path):
        src = tmp_path / "p.mini"
        src.write_text("assume(false);")
        proc = run_cli("precondition", str(src))
        assert "false (the exit is unreachable)" in proc.stdout


class TestBatch:
    def _sources(self, tmp_path):
        a = tmp_path / "a.mini"
        a.write_text("x = [0, 4]; y = x + 1; assert(y <= 5);")
        b = tmp_path / "b.mini"
        b.write_text("z = 3; assert(z == 3);")
        return a, b

    def _env(self, tmp_path):
        import os

        env = dict(os.environ)
        env["REPRO_CACHE_DIR"] = str(tmp_path / "cache")
        return env

    def test_batch_files_and_cache_warmup(self, tmp_path):
        a, b = self._sources(tmp_path)
        env = self._env(tmp_path)
        cold = run_cli("batch", str(a), str(b), "--jobs", "2", env=env)
        assert cold.returncode == 0, cold.stderr
        assert "2 ok, 0 degraded, 0 timeout, 0 error" in cold.stdout
        assert "cache: 0 hits, 2 misses" in cold.stdout
        warm = run_cli("batch", str(a), str(b), "--jobs", "2", env=env)
        assert warm.returncode == 0, warm.stderr
        assert "cache: 2 hits, 0 misses" in warm.stdout
        assert warm.stdout.count("(cached)") == 2

    def test_batch_no_cache(self, tmp_path):
        a, b = self._sources(tmp_path)
        proc = run_cli("batch", str(a), str(b), "--jobs", "1", "--no-cache",
                       env=self._env(tmp_path))
        assert proc.returncode == 0, proc.stderr
        assert "cache:" not in proc.stdout

    def test_batch_json_report(self, tmp_path):
        import json

        a, b = self._sources(tmp_path)
        out = tmp_path / "report.json"
        proc = run_cli("batch", str(a), str(b), "--jobs", "1", "--no-cache",
                       "--json", str(out), env=self._env(tmp_path))
        assert proc.returncode == 0, proc.stderr
        from repro.core.serialize import JOB_RESULT_SCHEMA

        report = json.loads(out.read_text())
        assert len(report["jobs"]) == 2
        assert all(j["schema"] == JOB_RESULT_SCHEMA and j["outcome"] == "ok"
                   for j in report["jobs"])
        assert all(j["compile_transfer"] is True for j in report["jobs"])
        assert report["jobs"][0]["label"] == str(a)

    def test_batch_timeout_flag(self, tmp_path):
        a, b = self._sources(tmp_path)
        proc = run_cli("batch", str(a), str(b), "--jobs", "2", "--no-cache",
                       "--timeout", "120", env=self._env(tmp_path))
        assert proc.returncode == 0, proc.stderr

    def test_batch_requires_input(self, tmp_path):
        proc = run_cli("batch", env=self._env(tmp_path))
        assert proc.returncode == 2
        assert "no input files" in proc.stderr

    def test_batch_suite_conflicts_with_files(self, tmp_path):
        a, _ = self._sources(tmp_path)
        proc = run_cli("batch", str(a), "--suite", env=self._env(tmp_path))
        assert proc.returncode == 2


class TestTelemetry:
    """--trace / --log-json / --metrics flags and the report command."""

    def _env(self, tmp_path):
        import os

        env = dict(os.environ)
        env["REPRO_CACHE_DIR"] = str(tmp_path / "cache")
        return env

    def _artifacts(self, tmp_path):
        return (tmp_path / "run.trace.json", tmp_path / "run.jsonl",
                tmp_path / "run.prom")

    def test_analyze_writes_artifacts_and_report_renders(self, tmp_path):
        src = tmp_path / "p.mini"
        src.write_text("x = [0, 4]; y = x + 1; assert(y <= 5);")
        trace_p, log_p, prom_p = self._artifacts(tmp_path)
        proc = run_cli("analyze", str(src), "--trace", str(trace_p),
                       "--log-json", str(log_p), "--metrics", str(prom_p))
        assert proc.returncode == 0, proc.stderr
        assert "VERIFIED" in proc.stdout  # normal output untouched

        import json

        from repro.obs.metrics import validate_prometheus_text
        from repro.obs.trace import validate_chrome_trace

        assert validate_chrome_trace(json.loads(trace_p.read_text())) > 0
        assert validate_prometheus_text(prom_p.read_text()) > 0

        report = run_cli("report", str(log_p))
        assert report.returncode == 0, report.stderr
        assert "Per-operator time" in report.stdout
        assert "Per-phase spans" in report.stdout
        assert "command:" in report.stdout

    def test_batch_trace_has_job_lanes(self, tmp_path):
        import json

        src = tmp_path / "p.mini"
        src.write_text("x = 1; assert(x == 1);")
        trace_p = tmp_path / "b.trace.json"
        proc = run_cli("batch", str(src), "--jobs", "2", "--no-cache",
                       "--no-journal", "--trace", str(trace_p),
                       env=self._env(tmp_path))
        assert proc.returncode == 0, proc.stderr
        events = json.loads(trace_p.read_text())["traceEvents"]
        jobs = [e for e in events
                if e.get("ph") == "X" and e["name"] == "job"]
        assert len(jobs) == 1
        lane = jobs[0]["tid"]
        assert any(e.get("ph") == "X" and e["name"] == "fixpoint"
                   and e["tid"] == lane for e in events)

    def test_batch_json_carries_rollups(self, tmp_path):
        import json

        src = tmp_path / "p.mini"
        src.write_text("x = [0, 4]; y = x + 1; assert(y <= 5);")
        out = tmp_path / "report.json"
        log_p = tmp_path / "run.jsonl"
        proc = run_cli("batch", str(src), "--jobs", "1", "--no-cache",
                       "--no-journal", "--json", str(out),
                       "--log-json", str(log_p), env=self._env(tmp_path))
        assert proc.returncode == 0, proc.stderr
        report = json.loads(out.read_text())
        assert report["run"].startswith("batch-")
        assert report["counters"]["cow_clones"] > 0
        assert report["op_calls"]["assign"] >= 1
        assert report["op_seconds"]["assign"] > 0
        assert report["histograms"]  # metrics armed by --log-json
        # Per-job results carry the same decomposition.
        assert report["jobs"][0]["op_calls"]["assign"] >= 1

    def test_report_on_batch_log(self, tmp_path):
        src = tmp_path / "p.mini"
        src.write_text("x = 1; assert(x == 1);")
        log_p = tmp_path / "run.jsonl"
        proc = run_cli("batch", str(src), "--jobs", "1", "--no-cache",
                       "--no-journal", "--log-json", str(log_p),
                       env=self._env(tmp_path))
        assert proc.returncode == 0, proc.stderr
        report = run_cli("report", str(log_p))
        assert report.returncode == 0, report.stderr
        assert "jobs:" in report.stdout
        assert "Per-operator time" in report.stdout

    def test_report_rejects_non_artifact(self, tmp_path):
        bogus = tmp_path / "bogus.jsonl"
        bogus.write_text("")
        proc = run_cli("report", str(bogus))
        assert proc.returncode == 2
        assert "run_summary" in proc.stderr

    def test_verbose_and_quiet_stderr(self, tmp_path):
        src = tmp_path / "p.mini"
        src.write_text("x = 1; assert(x == 1);")
        env = self._env(tmp_path)
        loud = run_cli("batch", str(src), "--jobs", "1", "--no-cache",
                       "--no-journal", "-v", env=env)
        assert "batch_done" in loud.stderr
        quiet = run_cli("batch", str(src), "--jobs", "1", "--no-cache",
                        "--no-journal", "-q", env=env)
        assert quiet.stderr.strip() == ""
        default = run_cli("batch", str(src), "--jobs", "1", "--no-cache",
                          "--no-journal", env=env)
        assert "batch_done" not in default.stderr

    def test_no_telemetry_flags_no_artifacts(self, tmp_path):
        """Without flags nothing extra appears on disk or streams."""
        src = tmp_path / "p.mini"
        src.write_text("x = 1; assert(x == 1);")
        before = set(tmp_path.iterdir())
        proc = run_cli("analyze", str(src))
        assert proc.returncode == 0
        assert set(tmp_path.iterdir()) == before


class TestSuiteAndDemo:
    def test_suite_listing(self):
        proc = run_cli("suite")
        assert proc.returncode == 0
        assert "crypt" in proc.stdout
        assert "146.0x" in proc.stdout

    def test_demo(self):
        proc = run_cli("demo")
        assert proc.returncode == 0
        assert "VERIFIED" in proc.stdout

    def test_bench_small(self):
        proc = run_cli("bench", "firefox", "--scale", "small")
        assert proc.returncode == 0, proc.stderr
        assert "speedup" in proc.stdout

    def test_unknown_command(self):
        proc = run_cli("nonsense")
        assert proc.returncode != 0
