"""Tests for the package CLI (python -m repro)."""

import subprocess
import sys

import pytest


def run_cli(*args, **kwargs):
    return subprocess.run([sys.executable, "-m", "repro", *args],
                          capture_output=True, text=True, timeout=300,
                          **kwargs)


class TestAnalyze:
    def test_analyze_file(self, tmp_path):
        src = tmp_path / "p.mini"
        src.write_text("x = [0, 4]; y = x + 1; assert(y <= 5);")
        proc = run_cli("analyze", str(src))
        assert proc.returncode == 0, proc.stderr
        assert "VERIFIED" in proc.stdout
        assert "y in [1, 5]" in proc.stdout

    def test_analyze_failure_exit_code(self, tmp_path):
        src = tmp_path / "p.mini"
        src.write_text("x = [0, 4]; assert(x <= 3);")
        proc = run_cli("analyze", str(src))
        assert proc.returncode == 1
        assert "FAILED TO PROVE" in proc.stdout

    @pytest.mark.parametrize("domain", ["interval", "zone", "pentagon"])
    def test_other_domains(self, tmp_path, domain):
        src = tmp_path / "p.mini"
        src.write_text("x = 1; assert(x == 1);")
        proc = run_cli("analyze", str(src), "--domain", domain)
        assert proc.returncode == 0, proc.stderr

    def test_analyze_multiple_files(self, tmp_path):
        ok = tmp_path / "ok.mini"
        ok.write_text("x = [0, 4]; y = x + 1; assert(y <= 5);")
        ok2 = tmp_path / "ok2.mini"
        ok2.write_text("z = 3; assert(z == 3);")
        proc = run_cli("analyze", str(ok), str(ok2), "--jobs", "1")
        assert proc.returncode == 0, proc.stderr
        assert f"== {ok} ==" in proc.stdout
        assert f"== {ok2} ==" in proc.stdout
        assert "2/2 assertions verified over 2 files" in proc.stdout

    def test_analyze_multiple_files_exit_code(self, tmp_path):
        ok = tmp_path / "ok.mini"
        ok.write_text("x = 1; assert(x == 1);")
        bad = tmp_path / "bad.mini"
        bad.write_text("x = [0, 4]; assert(x <= 3);")
        proc = run_cli("analyze", str(ok), str(bad), "--jobs", "1")
        assert proc.returncode == 1
        assert "FAILED TO PROVE" in proc.stdout


class TestPrecondition:
    def test_precondition(self, tmp_path):
        src = tmp_path / "p.mini"
        src.write_text("assume(x >= 2); y = x;")
        proc = run_cli("precondition", str(src))
        assert proc.returncode == 0, proc.stderr
        assert "-x <= -2" in proc.stdout

    def test_unreachable_exit(self, tmp_path):
        src = tmp_path / "p.mini"
        src.write_text("assume(false);")
        proc = run_cli("precondition", str(src))
        assert "false (the exit is unreachable)" in proc.stdout


class TestBatch:
    def _sources(self, tmp_path):
        a = tmp_path / "a.mini"
        a.write_text("x = [0, 4]; y = x + 1; assert(y <= 5);")
        b = tmp_path / "b.mini"
        b.write_text("z = 3; assert(z == 3);")
        return a, b

    def _env(self, tmp_path):
        import os

        env = dict(os.environ)
        env["REPRO_CACHE_DIR"] = str(tmp_path / "cache")
        return env

    def test_batch_files_and_cache_warmup(self, tmp_path):
        a, b = self._sources(tmp_path)
        env = self._env(tmp_path)
        cold = run_cli("batch", str(a), str(b), "--jobs", "2", env=env)
        assert cold.returncode == 0, cold.stderr
        assert "2 ok, 0 degraded, 0 timeout, 0 error" in cold.stdout
        assert "cache: 0 hits, 2 misses" in cold.stdout
        warm = run_cli("batch", str(a), str(b), "--jobs", "2", env=env)
        assert warm.returncode == 0, warm.stderr
        assert "cache: 2 hits, 0 misses" in warm.stdout
        assert warm.stdout.count("(cached)") == 2

    def test_batch_no_cache(self, tmp_path):
        a, b = self._sources(tmp_path)
        proc = run_cli("batch", str(a), str(b), "--jobs", "1", "--no-cache",
                       env=self._env(tmp_path))
        assert proc.returncode == 0, proc.stderr
        assert "cache:" not in proc.stdout

    def test_batch_json_report(self, tmp_path):
        import json

        a, b = self._sources(tmp_path)
        out = tmp_path / "report.json"
        proc = run_cli("batch", str(a), str(b), "--jobs", "1", "--no-cache",
                       "--json", str(out), env=self._env(tmp_path))
        assert proc.returncode == 0, proc.stderr
        from repro.core.serialize import JOB_RESULT_SCHEMA

        report = json.loads(out.read_text())
        assert len(report["jobs"]) == 2
        assert all(j["schema"] == JOB_RESULT_SCHEMA and j["outcome"] == "ok"
                   for j in report["jobs"])
        assert all(j["compile_transfer"] is True for j in report["jobs"])
        assert report["jobs"][0]["label"] == str(a)

    def test_batch_timeout_flag(self, tmp_path):
        a, b = self._sources(tmp_path)
        proc = run_cli("batch", str(a), str(b), "--jobs", "2", "--no-cache",
                       "--timeout", "120", env=self._env(tmp_path))
        assert proc.returncode == 0, proc.stderr

    def test_batch_requires_input(self, tmp_path):
        proc = run_cli("batch", env=self._env(tmp_path))
        assert proc.returncode == 2
        assert "no input files" in proc.stderr

    def test_batch_suite_conflicts_with_files(self, tmp_path):
        a, _ = self._sources(tmp_path)
        proc = run_cli("batch", str(a), "--suite", env=self._env(tmp_path))
        assert proc.returncode == 2


class TestSuiteAndDemo:
    def test_suite_listing(self):
        proc = run_cli("suite")
        assert proc.returncode == 0
        assert "crypt" in proc.stdout
        assert "146.0x" in proc.stdout

    def test_demo(self):
        proc = run_cli("demo")
        assert proc.returncode == 0
        assert "VERIFIED" in proc.stdout

    def test_bench_small(self):
        proc = run_cli("bench", "firefox", "--scale", "small")
        assert proc.returncode == 0, proc.stderr
        assert "speedup" in proc.stdout

    def test_unknown_command(self):
        proc = run_cli("nonsense")
        assert proc.returncode != 0
