"""Tests for the package CLI (python -m repro)."""

import subprocess
import sys

import pytest


def run_cli(*args, **kwargs):
    return subprocess.run([sys.executable, "-m", "repro", *args],
                          capture_output=True, text=True, timeout=300,
                          **kwargs)


class TestAnalyze:
    def test_analyze_file(self, tmp_path):
        src = tmp_path / "p.mini"
        src.write_text("x = [0, 4]; y = x + 1; assert(y <= 5);")
        proc = run_cli("analyze", str(src))
        assert proc.returncode == 0, proc.stderr
        assert "VERIFIED" in proc.stdout
        assert "y in [1, 5]" in proc.stdout

    def test_analyze_failure_exit_code(self, tmp_path):
        src = tmp_path / "p.mini"
        src.write_text("x = [0, 4]; assert(x <= 3);")
        proc = run_cli("analyze", str(src))
        assert proc.returncode == 1
        assert "FAILED TO PROVE" in proc.stdout

    @pytest.mark.parametrize("domain", ["interval", "zone", "pentagon"])
    def test_other_domains(self, tmp_path, domain):
        src = tmp_path / "p.mini"
        src.write_text("x = 1; assert(x == 1);")
        proc = run_cli("analyze", str(src), "--domain", domain)
        assert proc.returncode == 0, proc.stderr


class TestPrecondition:
    def test_precondition(self, tmp_path):
        src = tmp_path / "p.mini"
        src.write_text("assume(x >= 2); y = x;")
        proc = run_cli("precondition", str(src))
        assert proc.returncode == 0, proc.stderr
        assert "-x <= -2" in proc.stdout

    def test_unreachable_exit(self, tmp_path):
        src = tmp_path / "p.mini"
        src.write_text("assume(false);")
        proc = run_cli("precondition", str(src))
        assert "false (the exit is unreachable)" in proc.stdout


class TestSuiteAndDemo:
    def test_suite_listing(self):
        proc = run_cli("suite")
        assert proc.returncode == 0
        assert "crypt" in proc.stdout
        assert "146.0x" in proc.stdout

    def test_demo(self):
        proc = run_cli("demo")
        assert proc.returncode == 0
        assert "VERIFIED" in proc.stdout

    def test_bench_small(self):
        proc = run_cli("bench", "firefox", "--scale", "small")
        assert proc.returncode == 0, proc.stderr
        assert "speedup" in proc.stdout

    def test_unknown_command(self):
        proc = run_cli("nonsense")
        assert proc.returncode != 0
