"""Property tests: closure is a closure operator and is sound.

* idempotent: closing twice changes nothing;
* decreasing: pointwise <= the input (tighter or equal bounds);
* sound: every concrete point satisfying the input DBM satisfies the
  closed DBM (no point is lost);
* emptiness is detected consistently.
"""

import numpy as np
from hypothesis import given, settings

from dbm_strategies import coherent_dbms, sample_points, satisfies
from repro.core.closure_reference import closure_full_scalar
from repro.core.closure_dense import closure_dense_numpy
from repro.core.densemat import is_coherent, matrices_equal


@settings(max_examples=60, deadline=None)
@given(coherent_dbms())
def test_closure_idempotent(m):
    first = m.copy()
    if closure_dense_numpy(first):
        return
    second = first.copy()
    assert not closure_dense_numpy(second)
    assert matrices_equal(first, second, tol=1e-9)


@settings(max_examples=60, deadline=None)
@given(coherent_dbms())
def test_closure_decreasing_and_coherent(m):
    closed = m.copy()
    if closure_dense_numpy(closed):
        return
    # Decreasing everywhere except the reset diagonal.
    off = ~np.eye(m.shape[0], dtype=bool)
    assert np.all(closed[off] <= m[off] + 1e-9)
    assert is_coherent(closed)


@settings(max_examples=40, deadline=None)
@given(coherent_dbms())
def test_closure_soundness_by_sampling(m):
    """No concrete point of the input octagon is lost by closure."""
    closed = m.copy()
    empty = closure_dense_numpy(closed)
    rng = np.random.default_rng(0)
    for point in sample_points(m, rng, count=40):
        if satisfies(m, point):
            assert not empty, "closure declared a non-empty octagon empty"
            assert satisfies(closed, point), (
                f"point {point} satisfied the input but not the closure")


@settings(max_examples=40, deadline=None)
@given(coherent_dbms())
def test_emptiness_matches_reference(m):
    a = m.copy()
    b = m.copy()
    assert closure_dense_numpy(a) == closure_full_scalar(b)


def test_closure_derives_transitive_bound():
    # x - y <= 1 and y - z <= 2 must give x - z <= 3.
    from repro.core.constraints import OctConstraint, dbm_cells
    from repro.core.densemat import new_top
    m = new_top(3)
    for cons in (OctConstraint.diff(0, 1, 1.0), OctConstraint.diff(1, 2, 2.0)):
        for r, s, c in dbm_cells(cons):
            m[r, s] = min(m[r, s], c)
    assert not closure_dense_numpy(m)
    (r, s, _) = dbm_cells(OctConstraint.diff(0, 2, 0.0))[0]
    assert m[r, s] == 3.0


def test_closure_strengthening_combines_unaries():
    # x <= 1 and y <= 1 must give x + y <= 2 (the paper's example).
    from repro.core.constraints import OctConstraint, dbm_cells
    from repro.core.densemat import new_top
    m = new_top(2)
    for cons in (OctConstraint.upper(0, 1.0), OctConstraint.upper(1, 1.0)):
        for r, s, c in dbm_cells(cons):
            m[r, s] = min(m[r, s], c)
    assert not closure_dense_numpy(m)
    (r, s, _) = dbm_cells(OctConstraint.sum(0, 1, 0.0))[0]
    assert m[r, s] == 2.0


def test_closure_detects_contradiction():
    # x <= 0 and x >= 1 is empty.
    from repro.core.constraints import OctConstraint, dbm_cells
    from repro.core.densemat import new_top
    m = new_top(1)
    for cons in (OctConstraint.upper(0, 0.0), OctConstraint.lower(0, 1.0)):
        for r, s, c in dbm_cells(cons):
            m[r, s] = min(m[r, s], c)
    assert closure_dense_numpy(m)
