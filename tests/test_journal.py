"""Tests for the crash-resumable batch journal."""

import json
import os

import pytest

from repro.service.job import AnalysisJob, CheckVerdict, JobResult
from repro.service.journal import BatchJournal, batch_id
from repro.service.scheduler import run_batch
from repro.testing import faults

OK_SOURCE = "x = [0, 4]; y = x + 1; assert(y <= 5);"
OK2_SOURCE = "z = 3; assert(z == 3);"


def _result(key: str, *, label: str = "job", outcome: str = "ok") -> JobResult:
    return JobResult(key=key, label=label, domain="octagon", outcome=outcome,
                     seconds=0.5,
                     checks=[CheckVerdict("main", "x <= 5", True)],
                     rungs={"main": "zone"} if outcome == "degraded" else {})


def _boom_worker(job):
    raise AssertionError(f"worker must not run for journaled job {job.label}")


class TestBatchId:
    def test_order_insensitive(self):
        a = AnalysisJob(source=OK_SOURCE, label="a")
        b = AnalysisJob(source=OK2_SOURCE, label="b")
        assert batch_id([a, b]) == batch_id([b, a])

    def test_content_sensitive(self):
        a = AnalysisJob(source=OK_SOURCE)
        tight = AnalysisJob(source=OK_SOURCE, iteration_budget=3)
        assert batch_id([a]) != batch_id([tight])

    def test_for_jobs_path_under_root(self, tmp_path):
        jobs = [AnalysisJob(source=OK_SOURCE)]
        journal = BatchJournal.for_jobs(jobs, root=str(tmp_path))
        assert journal.path == tmp_path / "journals" / f"{batch_id(jobs)}.jsonl"


class TestRecordAndLoad:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with BatchJournal(path) as journal:
            journal.record(_result("k1"))
            journal.record(_result("k2", outcome="degraded"))
        loaded = BatchJournal(path).load()
        assert set(loaded) == {"k1", "k2"}
        assert loaded["k1"] == _result("k1")
        assert loaded["k2"].outcome == "degraded"
        assert loaded["k2"].rungs == {"main": "zone"}

    def test_missing_file_loads_empty(self, tmp_path):
        assert BatchJournal(tmp_path / "absent.jsonl").load() == {}

    def test_later_lines_win(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with BatchJournal(path) as journal:
            journal.record(_result("k1", outcome="error"))
            journal.record(_result("k1", outcome="ok"))
        loaded = BatchJournal(path).load()
        assert loaded["k1"].outcome == "ok"

    def test_torn_tail_tolerated(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with BatchJournal(path) as journal:
            journal.record(_result("k1"))
            journal.record(_result("k2"))
        # A crash mid-write leaves a dangling partial last line.
        faults.truncate_file(str(path), os.path.getsize(path) - 10)
        journal = BatchJournal(path)
        loaded = journal.load()
        assert set(loaded) == {"k1"}
        assert journal.torn_lines == 1

    def test_garbage_lines_skipped_not_fatal(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with BatchJournal(path) as journal:
            journal.record(_result("k1"))
        with open(path, "a", encoding="utf-8") as fh:
            fh.write("{not json\n")
            fh.write(json.dumps({"missing": "fields"}) + "\n")
        journal = BatchJournal(path)
        loaded = journal.load()
        assert set(loaded) == {"k1"}
        assert journal.torn_lines == 2


class TestRotation:
    def test_rotate_moves_stale_journal_aside(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with BatchJournal(path) as journal:
            journal.record(_result("k1"))
        backup = BatchJournal(path).rotate()
        assert backup == path.with_suffix(".jsonl.bak")
        assert backup.exists() and not path.exists()
        assert BatchJournal(path).load() == {}

    def test_rotate_nothing_is_fine(self, tmp_path):
        assert BatchJournal(tmp_path / "absent.jsonl").rotate() is None

    def test_rotate_open_journal_refused(self, tmp_path):
        journal = BatchJournal(tmp_path / "j.jsonl")
        journal.record(_result("k1"))
        with pytest.raises(RuntimeError):
            journal.rotate()
        journal.close()


class TestBatchIntegration:
    def _jobs(self):
        return [AnalysisJob(source=OK_SOURCE, label="a"),
                AnalysisJob(source=OK2_SOURCE, label="b")]

    def test_batch_journals_every_job(self, tmp_path):
        path = tmp_path / "j.jsonl"
        jobs = self._jobs()
        batch = run_batch(jobs, workers=1, journal=BatchJournal(path))
        assert batch.all_ok
        loaded = BatchJournal(path).load()
        assert set(loaded) == {job.key() for job in jobs}

    def test_resume_skips_journaled_jobs(self, tmp_path):
        path = tmp_path / "j.jsonl"
        jobs = self._jobs()
        first = run_batch(jobs, workers=1, journal=BatchJournal(path))
        # The resumed run's worker would blow up if invoked: proof that
        # journaled jobs are served without re-running anything.
        second = run_batch(jobs, workers=1, journal=BatchJournal(path),
                           resume=True, worker=_boom_worker)
        assert second.resumed == 2
        assert all(r.resumed for r in second.results)
        assert [r.verdicts() for r in second.results] \
            == [r.verdicts() for r in first.results]

    def test_resume_runs_only_missing_jobs(self, tmp_path):
        path = tmp_path / "j.jsonl"
        jobs = self._jobs()
        run_batch(jobs[:1], workers=1, journal=BatchJournal(path))
        batch = run_batch(jobs, workers=1, journal=BatchJournal(path),
                          resume=True)
        assert batch.resumed == 1
        assert batch.results[0].resumed and not batch.results[1].resumed
        assert batch.all_ok

    def test_fresh_run_rotates_instead_of_resuming(self, tmp_path):
        path = tmp_path / "j.jsonl"
        jobs = self._jobs()
        run_batch(jobs, workers=1, journal=BatchJournal(path))
        batch = run_batch(jobs, workers=1, journal=BatchJournal(path),
                          resume=False)
        assert batch.resumed == 0
        assert path.with_suffix(".jsonl.bak").exists()
