"""Tests for the precision degradation ladder and degraded outcomes."""

import pytest

from repro.analysis.analyzer import LADDER, Analyzer
from repro.core import stats
from repro.service.cache import ResultCache
from repro.service.job import (
    OUTCOME_DEGRADED,
    OUTCOME_OK,
    AnalysisJob,
    execute_job,
)
from repro.service.scheduler import run_batch
from repro.service.suite import run_suite

LOOP_SOURCE = """
proc count {
  x = 0;
  while (x < 1000) { x = x + 1; }
  assert (x >= 1000);
}
"""


class TestLadder:
    def test_every_ladder_starts_at_its_domain(self):
        for domain, rungs in LADDER.items():
            assert rungs[0] == domain

    def test_every_ladder_bottoms_out_at_interval(self):
        for rungs in LADDER.values():
            assert rungs[-1] == "interval"

    def test_rungs_without_degrade(self):
        analyzer = Analyzer(domain="octagon", degrade=False)
        assert analyzer._rungs() == ["octagon"]

    def test_rungs_with_degrade(self):
        analyzer = Analyzer(domain="octagon")
        assert analyzer._rungs() == ["octagon", "zone", "interval"]


class TestAnalyzerDegradation:
    def test_unbudgeted_run_is_never_degraded(self):
        result = Analyzer().analyze(LOOP_SOURCE)
        assert not result.degraded
        proc = result.procedure("count")
        assert proc.domain_used == "octagon"
        assert not proc.exhausted
        assert result.all_verified

    def test_exhausting_every_rung_synthesizes_top(self):
        result = Analyzer(iteration_budget=3).analyze(LOOP_SOURCE)
        proc = result.procedure("count")
        assert proc.degraded and proc.exhausted
        assert result.degraded
        # Top states are sound: the check becomes unknown, never wrong.
        assert not proc.checks[0].verified
        # Every node's invariant is top (trivially contains everything).
        for node in range(proc.cfg.n_nodes):
            assert proc.fixpoint.at(node).is_top()

    def test_cell_budget_descends_to_zone(self):
        # Only the octagon charges DBM closure cells, so a cell budget
        # interrupts the first rung and the zone completes the job.
        result = Analyzer(cell_budget=10).analyze(LOOP_SOURCE)
        proc = result.procedure("count")
        assert proc.degraded and not proc.exhausted
        assert proc.domain_used == "zone"

    def test_degraded_verified_subset_of_full(self):
        full = Analyzer().analyze(LOOP_SOURCE)
        degraded = Analyzer(iteration_budget=3).analyze(LOOP_SOURCE)

        def verified(result):
            return {(c.procedure, c.cond_text)
                    for c in result.checks if c.verified}

        assert verified(degraded) <= verified(full)

    def test_degradation_counters(self):
        with stats.collecting() as collector:
            Analyzer(iteration_budget=3).analyze(LOOP_SOURCE)
        counters = collector.merged_counters()
        # octagon, zone and interval each ran out => 3 interrupts.
        assert counters["budget_interrupts"] >= 3
        assert counters["degradations"] >= 3


class TestJobDegradation:
    def test_execute_job_reports_degraded_outcome(self):
        job = AnalysisJob(source=LOOP_SOURCE, label="loop",
                          iteration_budget=3)
        result = execute_job(job)
        assert result.outcome == OUTCOME_DEGRADED
        assert result.completed and not result.ok
        assert result.rungs == {"count": "<top>"}

    def test_execute_job_records_ladder_rung(self):
        result = execute_job(AnalysisJob(source=LOOP_SOURCE, cell_budget=10))
        assert result.outcome == OUTCOME_DEGRADED
        assert result.rungs == {"count": "zone"}

    def test_budgets_are_part_of_the_job_key(self):
        free = AnalysisJob(source=LOOP_SOURCE)
        tight = AnalysisJob(source=LOOP_SOURCE, iteration_budget=3)
        assert free.key() != tight.key()

    def test_degraded_results_are_not_cached(self, tmp_path):
        cache = ResultCache(str(tmp_path / "cache"))
        ok_job = AnalysisJob(source="x = 1; assert (x == 1);")
        degraded_job = AnalysisJob(source=LOOP_SOURCE, iteration_budget=3)
        batch = run_batch([ok_job, degraded_job], workers=1, cache=cache)
        assert [r.outcome for r in batch.results] == [OUTCOME_OK,
                                                      OUTCOME_DEGRADED]
        assert cache.get(ok_job.key()) is not None
        # A degraded verdict reflects this run's budget exhaustion, not
        # the job's content: it must never be served to a future run.
        assert cache.get(degraded_job.key()) is None


@pytest.mark.slow
class TestSuiteDegradation:
    def test_tight_budget_suite_completes_soundly(self):
        """The ISSUE acceptance bar: under a tight budget every suite
        job still completes (ok or degraded -- never timeout/error) and
        degraded runs never *prove* anything the full-precision run
        could not."""
        full = run_suite("small", retries=0)
        tight = run_suite("small", retries=0, iteration_budget=40)

        assert full.all_completed
        assert tight.all_completed
        counts = tight.outcome_counts()
        assert counts.get("timeout", 0) == 0
        assert counts.get("error", 0) == 0
        assert counts.get(OUTCOME_DEGRADED, 0) > 0

        def verified(batch):
            return {r.label: {(c.procedure, c.cond_text)
                              for c in r.checks if c.verified}
                    for r in batch.results}

        full_v, tight_v = verified(full), verified(tight)
        for label, proved in tight_v.items():
            assert proved <= full_v[label], label
