"""Tests specific to the packed dense closure (Algorithm 3)."""

import numpy as np
from hypothesis import given, settings

from dbm_strategies import coherent_dbms
from repro.core.closure_apron import apron_closure_op_count, closure_apron
from repro.core.closure_dense import (
    closure_dense_numpy,
    closure_dense_packed_roundtrip,
    closure_dense_scalar,
    dense_closure_op_count,
    pack,
    packed_index,
    unpack,
)
from repro.core.densemat import is_coherent, new_top
from repro.core.halfmat import HalfMat
from repro.core.indexing import half_size, matpos2
from repro.core.stats import OpCounter


class TestPackedIndex:
    def test_idx_matches_matpos2(self):
        px = packed_index(3)
        for i in range(6):
            for j in range(6):
                assert px.idx[i, j] == matpos2(i, j)

    def test_rows_cols_consistent(self):
        px = packed_index(4)
        assert px.rows.shape == (half_size(4),)
        for slot in range(half_size(4)):
            i, j = int(px.rows[slot]), int(px.cols[slot])
            assert px.idx[i, j] == slot

    def test_cache_returns_same_object(self):
        assert packed_index(5) is packed_index(5)

    def test_unary_and_diag_offsets(self):
        px = packed_index(2)
        for i in range(4):
            assert px.diag[i] == matpos2(i, i)
            assert px.unary[i] == matpos2(i, i ^ 1)


class TestPackUnpack:
    @given(coherent_dbms())
    @settings(max_examples=40, deadline=None)
    def test_roundtrip(self, m):
        flat, px = pack(m)
        assert flat.shape == (half_size(m.shape[0] // 2),)
        back = unpack(flat, px)
        assert np.array_equal(np.isinf(m), np.isinf(back))
        finite = np.isfinite(m)
        assert np.allclose(m[finite], back[finite])
        assert is_coherent(back)

    def test_unpack_into_out(self):
        m = new_top(2)
        m[1, 0] = 3.0
        m[0, 1] = 3.0
        flat, px = pack(m)
        out = np.empty_like(m)
        unpack(flat, px, out=out)
        assert out[1, 0] == 3.0


class TestOpCounts:
    def test_counts_match_formulas_exactly(self):
        for n in (1, 2, 3, 5, 9, 12):
            counter = OpCounter()
            closure_apron(HalfMat(n), counter)
            assert counter.mins == apron_closure_op_count(n)
            counter = OpCounter()
            closure_dense_scalar(HalfMat(n), counter)
            assert counter.mins == dense_closure_op_count(n)

    def test_halving_claim(self):
        """The paper's headline: Algorithm 3 halves Algorithm 2's ops."""
        n = 64
        ratio = dense_closure_op_count(n) / apron_closure_op_count(n)
        assert abs(ratio - 0.5) < 0.01

    def test_counts_are_input_independent(self):
        """The scalar closures evaluate every candidate regardless of
        values (no data-dependent shortcuts)."""
        n = 4
        top = HalfMat(n)
        c1 = OpCounter()
        closure_dense_scalar(top, c1)
        busy = HalfMat(n)
        for i in range(2 * n):
            for j in range((i | 1) + 1):
                if i != j:
                    busy.set(i, j, float(i + j))
        c2 = OpCounter()
        closure_dense_scalar(busy, c2)
        assert c1.mins == c2.mins


class TestPackedRoundtripClosure:
    @given(coherent_dbms())
    @settings(max_examples=40, deadline=None)
    def test_packed_matches_production(self, m):
        """The packed Algorithm 3 kernel and the production sweep agree."""
        a, b = m.copy(), m.copy()
        ea = closure_dense_packed_roundtrip(a)
        eb = closure_dense_numpy(b)
        assert ea == eb
        if not ea:
            assert np.array_equal(np.isinf(a), np.isinf(b))
            fa = np.isfinite(a)
            assert np.allclose(a[fa], b[fa])

    def test_packed_does_half_the_candidates(self):
        """The headline op-count claim, on the vectorised kernels."""
        from repro.core.stats import OpCounter
        from repro.core.densemat import new_top
        n = 10
        cp = OpCounter()
        closure_dense_packed_roundtrip(new_top(n), cp)
        cf = OpCounter()
        closure_dense_numpy(new_top(n), cf)
        assert cp.mins < 0.6 * cf.mins
