"""Tests for run contexts and the artifact-driven run report."""

import json

import pytest

from repro.analysis.analyzer import Analyzer
from repro.obs import events, metrics, trace
from repro.obs.report import (
    RunContext,
    new_run_id,
    operator_rows,
    phase_rows,
    render_report,
)

SOURCE = """\
proc main {
  x = 0;
  while (x < 6) { x = x + 1; }
  assert(x == 6);
}
"""


@pytest.fixture(autouse=True)
def clean_telemetry():
    yield
    trace.disable()
    trace.reset()
    events.configure(stderr_level=events.WARNING)
    events.close()


def _run_with_artifacts(tmp_path, **kwargs):
    paths = {
        "trace_path": str(tmp_path / "run.trace.json"),
        "log_path": str(tmp_path / "run.jsonl"),
        "metrics_path": str(tmp_path / "run.prom"),
    }
    paths.update(kwargs)
    with RunContext("analyze", quiet=True, **paths) as ctx:
        result = Analyzer().analyze(SOURCE, collect=True)
        ctx.finish(result.octagon_stats)
    return ctx, paths


class TestRunContext:
    def test_run_id_embeds_command(self):
        assert new_run_id("batch").startswith("batch-")

    def test_inactive_without_flags(self):
        ctx = RunContext("analyze")
        assert not ctx.active
        with ctx:
            pass  # no artifacts, no crash
        assert not trace.enabled()

    def test_writes_all_artifacts(self, tmp_path):
        ctx, paths = _run_with_artifacts(tmp_path)
        document = json.loads(open(paths["trace_path"]).read())
        assert trace.validate_chrome_trace(document) > 0
        text = open(paths["metrics_path"]).read()
        assert metrics.validate_prometheus_text(text) > 0
        records = events.read_jsonl(paths["log_path"])
        names = [r["event"] for r in records]
        assert "run_start" in names
        assert "run_summary" in names
        summary = [r for r in records if r["event"] == "run_summary"][-1]
        assert summary["run"] == ctx.run_id
        assert summary["op_seconds"]
        assert summary["counters"]["cow_clones"] > 0
        # Histograms were collected: metrics flag armed by the context.
        assert summary["histograms"]

    def test_restores_global_state(self, tmp_path):
        assert not trace.enabled()
        assert not metrics.enabled()
        _run_with_artifacts(tmp_path)
        assert not trace.enabled()
        assert not metrics.enabled()


class TestRows:
    def test_operator_rows_sorted_by_self_time(self):
        rows = operator_rows({
            "op_seconds": {"a": 0.5, "b": 2.0},
            "op_self_seconds": {"a": 0.5, "b": 1.0},
            "op_calls": {"a": 3, "b": 1},
        })
        assert [r[0] for r in rows] == ["b", "a"]
        # self% column sums to ~100.
        assert sum(float(r[4].rstrip("%")) for r in rows) == pytest.approx(
            100.0, abs=0.2)

    def test_phase_rows_aggregate_durations(self):
        rows = phase_rows([
            {"ph": "X", "name": "closure", "dur": 1000.0},
            {"ph": "X", "name": "closure", "dur": 500.0},
            {"ph": "M", "name": "thread_name"},
            {"ph": "X", "name": "parse", "dur": 100.0},
        ])
        assert rows[0][:2] == ["closure", 2]
        assert rows[0][2] == "1.500"


class TestRenderReport:
    def test_report_from_artifacts_alone(self, tmp_path):
        _, paths = _run_with_artifacts(tmp_path)
        text = render_report(paths["log_path"])
        assert "Per-operator time" in text
        assert "assign" in text
        assert "Per-phase spans" in text
        assert "fixpoint" in text
        assert "Counters (zero-valued omitted):" in text
        assert "cow_clones" in text
        assert "Distributions:" in text

    def test_trace_override(self, tmp_path):
        _, paths = _run_with_artifacts(tmp_path)
        moved = tmp_path / "elsewhere.json"
        moved.write_bytes(open(paths["trace_path"], "rb").read())
        text = render_report(paths["log_path"], trace_path=str(moved))
        assert "elsewhere.json" in text

    def test_log_without_summary_rejected(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text('{"event": "run_start"}\n')
        with pytest.raises(ValueError, match="run_summary"):
            render_report(str(path))

    def test_diagnostics_section_lists_warnings(self, tmp_path):
        log = tmp_path / "run.jsonl"
        with RunContext("batch", log_path=str(log), quiet=True) as ctx:
            events.warning("result_cache_evicted", path="/x")
            ctx.finish(counters={}, histograms={})
        text = render_report(str(log))
        assert "Diagnostics (1 warning/error events):" in text
        assert "result_cache_evicted" in text

    def test_operator_split_survives_without_trace(self, tmp_path):
        """The per-operator table needs only the JSONL artifact."""
        log = tmp_path / "run.jsonl"
        with RunContext("analyze", log_path=str(log), quiet=True) as ctx:
            result = Analyzer().analyze(SOURCE, collect=True)
            ctx.finish(result.octagon_stats)
        text = render_report(str(log))
        assert "Per-operator time" in text
        assert "Per-phase spans" not in text
