"""Tests for the integer-tightening extension (Mine 2006)."""

import itertools

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Octagon, OctConstraint


def build_random(rng, n):
    o = Octagon.top(n)
    for _ in range(int(rng.integers(1, 6))):
        v, w = rng.integers(0, n, 2)
        c = float(rng.integers(-4, 9)) + float(rng.choice([0.0, 0.5]))
        if v == w:
            cons = (OctConstraint.upper(int(v), c) if rng.random() < 0.5
                    else OctConstraint.lower(int(v), c))
        else:
            cons = OctConstraint(int(v), int(rng.choice([-1, 1])),
                                 int(w), int(rng.choice([-1, 1])), c)
        o = o.meet_constraint(cons)
    return o


class TestBasics:
    def test_fractional_unary_bound_floors(self):
        o = Octagon.from_constraints(1, [OctConstraint.upper(0, 1.5)])
        t = o.tighten_integers()
        assert t.bounds(0)[1] == 1.0

    def test_fractional_lower_bound(self):
        # x >= 0.5 over the integers means x >= 1.
        o = Octagon.from_constraints(1, [OctConstraint.lower(0, 0.5)])
        t = o.tighten_integers()
        assert t.bounds(0)[0] == 1.0

    def test_exposes_integer_emptiness(self):
        # 0.4 <= x <= 0.6 has real solutions but no integer ones.
        o = Octagon.from_constraints(1, [OctConstraint.upper(0, 0.6),
                                         OctConstraint.lower(0, 0.4)])
        assert not o.is_bottom()
        assert o.tighten_integers().is_bottom()

    def test_binary_bound_floors(self):
        o = Octagon.from_constraints(2, [OctConstraint.sum(0, 1, 4.7)])
        t = o.tighten_integers()
        assert t.sat_constraint(OctConstraint.sum(0, 1, 4.0))

    def test_on_bottom_and_integral(self):
        assert Octagon.bottom(2).tighten_integers().is_bottom()
        o = Octagon.from_box([(0.0, 3.0)])
        assert o.tighten_integers().bounds(0) == (0.0, 3.0)

    def test_strengthening_after_tightening(self):
        # x <= 1.5 and y <= 1.5: over Z, x + y <= 2 (not 3).
        o = Octagon.from_constraints(2, [OctConstraint.upper(0, 1.5),
                                         OctConstraint.upper(1, 1.5)])
        t = o.tighten_integers()
        assert t.sat_constraint(OctConstraint.sum(0, 1, 2.0))


class TestSoundness:
    def test_integer_points_preserved(self):
        rng = np.random.default_rng(17)
        for _ in range(120):
            n = int(rng.integers(1, 4))
            o = build_random(rng, n)
            t = o.tighten_integers()
            for pt in itertools.product(range(-6, 10), repeat=n):
                point = list(map(float, pt))
                if o.contains_point(point):
                    assert not t.is_bottom()
                    assert t.contains_point(point), (o.pretty(), t.pretty(), pt)

    def test_result_is_tighter_or_equal(self):
        rng = np.random.default_rng(23)
        for _ in range(60):
            o = build_random(rng, 3)
            t = o.tighten_integers()
            assert t.is_leq(o)


class TestPretty:
    def test_pretty_top_bottom(self):
        assert Octagon.top(2).pretty() == "true"
        assert Octagon.bottom(2).pretty() == "false"

    def test_pretty_with_names(self):
        o = Octagon.from_constraints(2, [OctConstraint.diff(0, 1, 3.0)])
        text = o.pretty(names=["x", "y"])
        assert "+x -y <= 3" in text

    def test_pretty_unary(self):
        o = Octagon.from_constraints(1, [OctConstraint.upper(0, 2.0)])
        assert "+v0 <= 2" in o.pretty()
