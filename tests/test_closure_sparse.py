"""Tests specific to the index-driven sparse closure."""

import numpy as np

from repro.core.closure_dense import closure_dense_numpy
from repro.core.closure_sparse import closure_sparse, shortest_path_sparse
from repro.core.constraints import OctConstraint, dbm_cells
from repro.core.densemat import new_top
from repro.core.stats import OpCounter


def _with_constraints(n, constraints):
    m = new_top(n)
    for cons in constraints:
        for r, s, c in dbm_cells(cons):
            m[r, s] = min(m[r, s], c)
    return m


class TestCandidateSkipping:
    def test_top_needs_no_candidates(self):
        m = new_top(10)
        performed = shortest_path_sparse(m)
        # Only diagonal entries are finite: each pivot contributes a
        # single 1x1 rectangle.
        assert performed == 2 * 10

    def test_clustered_input_stays_cheap(self):
        """Two 2-variable clusters in a 20-variable DBM: candidate count
        stays far below the dense n^3."""
        n = 20
        m = _with_constraints(n, [
            OctConstraint.diff(0, 1, 3.0),
            OctConstraint.diff(1, 0, -1.0),
            OctConstraint.diff(10, 11, 2.0),
        ])
        counter = OpCounter()
        performed = shortest_path_sparse(m, counter)
        dense_candidates = 2 * (2 * n) ** 3  # full FW would do this
        assert performed < dense_candidates / 100

    def test_counter_receives_two_ops_per_candidate(self):
        m = new_top(3)
        counter = OpCounter()
        performed = shortest_path_sparse(m, counter)
        assert counter.mins == 2 * performed


class TestCorrectnessEdges:
    def test_empty_dimension(self):
        m = new_top(0).reshape(0, 0)
        assert not closure_sparse(m)

    def test_bottom_detection(self):
        m = _with_constraints(1, [OctConstraint.upper(0, -1.0),
                                  OctConstraint.lower(0, 0.0)])
        assert closure_sparse(m)

    def test_matches_dense_on_mixed_density(self):
        rng = np.random.default_rng(5)
        for _ in range(20):
            n = int(rng.integers(2, 8))
            m = new_top(n)
            for _ in range(int(rng.integers(1, 4 * n))):
                i, j = rng.integers(0, 2 * n, 2)
                if i != j:
                    c = float(rng.integers(-2, 20))
                    m[i, j] = min(m[i, j], c)
                    m[j ^ 1, i ^ 1] = m[i, j]
            a, b = m.copy(), m.copy()
            ea = closure_sparse(a)
            eb = closure_dense_numpy(b)
            assert ea == eb
            if not ea:
                assert np.allclose(np.where(np.isinf(a), 1e300, a),
                                   np.where(np.isinf(b), 1e300, b))
