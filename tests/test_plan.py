"""Compiled transfer plans: unit behaviour and the determinism contract.

The plan layer promises more than semantic equivalence: the compiled
executor must be **matrix-identical** to the interpreter (widening
consumes raw representations, so anything weaker could change iteration
counts).  The tests enforce the strongest observable consequences:
identical verdicts, identical exit boxes, identical iteration /
widening / narrowing counts -- on hand-written programs, on random
(hypothesis) programs, and on the full 17-benchmark workload suite.
"""

import dataclasses

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis import Analyzer, FixpointEngine, necessary_precondition
from repro.analysis.plan import compile_action, compile_cfg, counters
from repro.analysis.transfer import apply_action
from repro.domains.domain import get_domain
from repro.frontend.cfg import build_cfg
from repro.frontend.parser import parse_program
from repro.workloads.suite import BENCHMARKS

from test_fuzz_soundness import programs

DOMAINS = ["octagon", "apron", "interval", "zone", "pentagon"]

FUZZ = settings(max_examples=25, deadline=None,
                suppress_health_check=[HealthCheck.too_slow,
                                       HealthCheck.data_too_large,
                                       HealthCheck.filter_too_much])


def _cfg_of(source):
    return build_cfg(parse_program(source).procedures[0])


def _analyze_pair(source, domain, **kwargs):
    on = Analyzer(domain=domain, compile_transfer=True, **kwargs).analyze(source)
    off = Analyzer(domain=domain, compile_transfer=False, **kwargs).analyze(source)
    return on, off


def _assert_identical(on, off):
    assert [c.verified for c in on.checks] == [c.verified for c in off.checks]
    for pa, pb in zip(on.procedures, off.procedures):
        assert pa.fixpoint.iterations == pb.fixpoint.iterations
        assert pa.fixpoint.widenings == pb.fixpoint.widenings
        assert pa.fixpoint.narrowings == pb.fixpoint.narrowings
        for node in pa.fixpoint.states:
            sa, sb = pa.fixpoint.at(node), pb.fixpoint.at(node)
            assert sa.is_bottom() == sb.is_bottom()
            if hasattr(sa, "mat"):
                # The raw representation, not the closure: this is what
                # widening sees on the next analysis of the same node.
                assert np.array_equal(sa.mat, sb.mat), f"node {node}"
            if not sa.is_bottom() and hasattr(sa, "to_box"):
                assert sa.to_box() == sb.to_box()


# ----------------------------------------------------------------------
# unit behaviour of compile_action
# ----------------------------------------------------------------------
class TestCompileAction:
    def _edge_plans(self, source):
        cfg = _cfg_of(source)
        return cfg, [(e, compile_action(e.action, cfg.var_index))
                     for e in cfg.edges]

    def test_identity_actions_compile_to_none(self):
        cfg, plans = self._edge_plans("x = 1; assume(true); while (x < 3) { x = x + 1; }")
        none_edges = [e for e, p in plans if p is None]
        assert none_edges, "no-op edges should compile away"
        for e, p in plans:
            if e.action is None:
                assert p is None

    def test_trivially_true_assume_is_identity(self):
        cfg = _cfg_of("x = 1;")
        from repro.frontend.ast_nodes import Assume, BoolLit
        assert compile_action(Assume(BoolLit(True)), cfg.var_index) is None

    def test_trivially_false_assume_is_bottom(self):
        cfg = _cfg_of("x = 1;")
        from repro.frontend.ast_nodes import Assume, BoolLit
        plan = compile_action(Assume(BoolLit(False)), cfg.var_index)
        top = get_domain("octagon").top(len(cfg.variables))
        assert plan(top).is_bottom()

    @pytest.mark.parametrize("domain", DOMAINS)
    def test_every_edge_matches_interpreter(self, domain):
        source = ("x = 0; y = [0, 8]; havoc(z); "
                  "assume(x >= 0 && x <= 10 && y != 3); "
                  "z = x + y - 2; z = z * y; "
                  "if (z > 5 || y < 1) { x = -z + 1; }")
        cfg, plans = self._edge_plans(source)
        factory = get_domain(domain)
        state = factory.top(len(cfg.variables))
        for e, p in plans:
            expected = apply_action(state, e.action, cfg.var_index)
            got = state if p is None else p(state)
            assert expected.is_bottom() == got.is_bottom()
            if hasattr(expected, "mat"):
                assert np.array_equal(expected.mat, got.mat)
            elif hasattr(expected, "to_box") and not expected.is_bottom():
                assert expected.to_box() == got.to_box()

    def test_conjunctive_chain_batches_constraints(self):
        from repro.frontend.ast_nodes import Assume, BoolOp

        cfg = _cfg_of("havoc(x); assume(x >= 0 && x <= 10);")
        (edge,) = [e for e in cfg.edges
                   if isinstance(e.action, Assume)
                   and isinstance(e.action.cond, BoolOp)]
        plan = compile_action(edge.action, cfg.var_index)
        top = get_domain("octagon").top(len(cfg.variables))
        before = counters()
        out = plan(top)
        after = counters()
        # Both unary tests on x fused into one meet_constraints call:
        # one incremental closure instead of two.
        assert after["constraints_batched"] - before["constraints_batched"] == 2
        assert after["closures_avoided"] - before["closures_avoided"] == 1
        interp = apply_action(top, edge.action, cfg.var_index)
        assert np.array_equal(out.mat, interp.mat)

    def test_compile_cfg_counts_plans(self):
        cfg = _cfg_of("x = 0; while (x < 4) { x = x + 1; }")
        before = counters()["plans_compiled"]
        compiled = compile_cfg(cfg)
        assert compiled.n_plans > 0
        assert counters()["plans_compiled"] - before == compiled.n_plans
        # Adjacency mirrors the CFG's own lists.
        for node, edges in cfg.predecessors.items():
            assert [src for src, _ in compiled.predecessors[node]] == \
                [e.src for e in edges]


# ----------------------------------------------------------------------
# engine-level determinism (structured + worklist solvers)
# ----------------------------------------------------------------------
class TestEngineDeterminism:
    SOURCES = [
        "x = 0; while (x < 100) { x = x + 1; } assert(x == 100);",
        ("i = 0; j = 10; while (i < j) { i = i + 1; j = j - 1; } "
         "assert(i >= j);"),
        ("x = [0, 5]; y = 0; while (x > 0) { x = x - 1; y = y + 2; } "
         "assert(y >= 0);"),
        ("a = 1; if (a == 1 || a == 2) { b = a * a; } else { b = 0; } "
         "assert(b <= 4);"),
        "x = 3; assume(x != 3); assert(false);",
    ]

    @pytest.mark.parametrize("domain", DOMAINS)
    @pytest.mark.parametrize("source", SOURCES)
    def test_programs_identical(self, domain, source):
        _assert_identical(*_analyze_pair(source, domain))

    @pytest.mark.parametrize("domain", ["octagon", "interval"])
    def test_worklist_solver_identical(self, domain):
        # Strip the loop tree so the engine takes the generic worklist
        # path in both modes.
        source = "x = 0; while (x < 9) { x = x + 1; if (x == 4) { x = x + 2; } }"
        cfg = dataclasses.replace(_cfg_of(source), loop_tree=None)
        factory = get_domain(domain)
        kw = dict(widening_delay=2, narrowing_steps=3)
        fix_on = FixpointEngine(compile_transfer=True, **kw).analyze(cfg, factory)
        fix_off = FixpointEngine(compile_transfer=False, **kw).analyze(cfg, factory)
        assert fix_on.iterations == fix_off.iterations
        assert fix_on.widenings == fix_off.widenings
        assert fix_on.narrowings == fix_off.narrowings
        for node in fix_on.states:
            sa, sb = fix_on.at(node), fix_off.at(node)
            assert sa.is_bottom() == sb.is_bottom()
            if hasattr(sa, "mat"):
                assert np.array_equal(sa.mat, sb.mat)

    def test_widening_thresholds_still_apply(self):
        source = "x = 0; while (x < 37) { x = x + 1; }"
        kw = dict(widening_delay=1, widening_thresholds=(37.0,))
        _assert_identical(*_analyze_pair(source, "octagon", **kw))

    def test_backward_identical(self):
        source = ("havoc(x); y = 0; while (x > 0) { x = x - 1; y = y + 1; } "
                  "assume(y <= 5);")
        pre_on = necessary_precondition(source, compile_transfer=True)
        pre_off = necessary_precondition(source, compile_transfer=False)
        assert pre_on.is_bottom() == pre_off.is_bottom()
        assert np.array_equal(pre_on.mat, pre_off.mat)


# ----------------------------------------------------------------------
# property: random programs, identical everything
# ----------------------------------------------------------------------
@pytest.mark.parametrize("domain", DOMAINS)
class TestFuzzDeterminism:
    @FUZZ
    @given(source=programs())
    def test_compiled_equals_interpreted(self, domain, source):
        _assert_identical(*_analyze_pair(source, domain))


# ----------------------------------------------------------------------
# the full workload suite
# ----------------------------------------------------------------------
class TestSuiteDeterminism:
    @pytest.mark.parametrize("bench", BENCHMARKS, ids=lambda b: b.name)
    def test_benchmark_identical(self, bench):
        source = bench.source("small")
        _assert_identical(*_analyze_pair(source, "octagon"))
