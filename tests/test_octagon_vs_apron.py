"""The differential oracle: the optimised Octagon and the APRON-style
baseline must compute semantically identical abstract states for every
operation sequence.  This is the strongest end-to-end correctness check
in the suite: it exercises decomposition, sparse/dense switching,
incremental closure and every transfer function at once."""

import numpy as np
import pytest

from repro.core import ApronOctagon, LinExpr, Octagon, OctConstraint


def equal_state(o: Octagon, a: ApronOctagon) -> bool:
    if o.is_bottom() or a.is_bottom():
        return o.is_bottom() == a.is_bottom()
    co, ca = o.closure(), a.closure()
    if o.is_bottom() or a.is_bottom():
        return o.is_bottom() == a.is_bottom()
    full = ca.half.to_full()
    return np.allclose(np.where(np.isinf(co.mat), 1e300, co.mat),
                       np.where(np.isinf(full), 1e300, full))


def random_constraint(rng, n):
    v = int(rng.integers(0, n))
    w = int(rng.integers(0, n))
    c = float(rng.integers(-5, 12))
    if w == v:
        return (OctConstraint.upper(v, c) if rng.random() < 0.5
                else OctConstraint.lower(v, c))
    a, b = int(rng.choice([-1, 1])), int(rng.choice([-1, 1]))
    return OctConstraint(v, a, w, b, c)


def apply_random_op(rng, n, o1, a1, o2, a2):
    """One random domain operation applied to both implementations."""
    op = rng.integers(0, 10)
    if op == 0:
        c = random_constraint(rng, n)
        return o1.meet_constraint(c), a1.meet_constraint(c)
    if op == 1:
        v, c = int(rng.integers(0, n)), float(rng.integers(-5, 10))
        return o1.assign_const(v, c), a1.assign_const(v, c)
    if op == 2:
        v, w = (int(x) for x in rng.integers(0, n, 2))
        coeff = int(rng.choice([-1, 1]))
        off = float(rng.integers(-3, 5))
        return (o1.assign_var(v, w, coeff=coeff, offset=off),
                a1.assign_var(v, w, coeff=coeff, offset=off))
    if op == 3:
        v = int(rng.integers(0, n))
        return o1.forget(v), a1.forget(v)
    if op == 4:
        return o1.join(o2), a1.join(a2)
    if op == 5:
        return o1.meet(o2), a1.meet(a2)
    if op == 6:
        return o1.widening(o2), a1.widening(a2)
    if op == 7:
        nv = int(rng.integers(1, min(n, 3) + 1))
        vs = rng.choice(n, nv, replace=False)
        coeffs = {int(v): float(rng.choice([-1.0, 1.0, 2.0])) for v in vs}
        expr = LinExpr(coeffs, float(rng.integers(-4, 4)))
        return o1.assume_linear(expr), a1.assume_linear(expr)
    if op == 8:
        v = int(rng.integers(0, n))
        lo = float(rng.integers(-5, 3))
        hi = lo + float(rng.integers(0, 8))
        return o1.assign_interval(v, lo, hi), a1.assign_interval(v, lo, hi)
    v = int(rng.integers(0, n))
    nv = int(rng.integers(1, min(n, 3) + 1))
    vs = rng.choice(n, nv, replace=False)
    coeffs = {int(w): float(rng.choice([-1.0, 1.0, 3.0])) for w in vs}
    expr = LinExpr(coeffs, float(rng.integers(-3, 4)))
    return o1.assign_linexpr(v, expr), a1.assign_linexpr(v, expr)


@pytest.mark.parametrize("seed", range(12))
def test_random_operation_sequences(seed):
    rng = np.random.default_rng(1000 + seed)
    n = int(rng.integers(2, 8))
    o1, a1 = Octagon.top(n), ApronOctagon.top(n)
    o2, a2 = Octagon.top(n), ApronOctagon.top(n)
    for step in range(30):
        o1, a1 = apply_random_op(rng, n, o1, a1, o2, a2)
        if rng.random() < 0.3:
            o1, o2, a1, a2 = o2, o1, a2, a1
        assert equal_state(o1, a1), f"seed {seed} diverged at step {step}"
        assert equal_state(o2, a2), f"seed {seed} pair2 diverged at step {step}"


@pytest.mark.parametrize("seed", range(4))
def test_query_agreement(seed):
    """Bounds and inclusion queries agree along random sequences."""
    rng = np.random.default_rng(2000 + seed)
    n = 4
    o, a = Octagon.top(n), ApronOctagon.top(n)
    o2, a2 = Octagon.top(n), ApronOctagon.top(n)
    for _ in range(20):
        o, a = apply_random_op(rng, n, o, a, o2, a2)
        for v in range(n):
            assert o.bounds(v) == pytest.approx(a.bounds(v))
        assert o.is_bottom() == a.is_bottom()
        assert o.is_top() == a.is_top()
        assert o.is_leq(o) and a.is_leq(a)


def test_partition_always_overapproximates_exact():
    """Along random sequences the maintained partition is always a safe
    over-approximation of the exact components of the matrix."""
    from repro.core.partition import Partition
    rng = np.random.default_rng(77)
    n = 6
    o = Octagon.top(n)
    o2 = Octagon.top(n)
    a = ApronOctagon.top(n)
    a2 = ApronOctagon.top(n)
    for _ in range(40):
        o, a = apply_random_op(rng, n, o, a, o2, a2)
        if o.is_bottom():
            o, a = Octagon.top(n), ApronOctagon.top(n)
            continue
        exact = Partition.from_matrix(o.mat)
        assert o.partition.overapproximates(exact)
