"""Tests for the concrete interpreter."""

import random

import pytest

from repro.frontend import parse_program
from repro.frontend.interp import (
    InfeasiblePath,
    Interpreter,
    StepBudgetExceeded,
    sample_runs,
)


def run_source(source, seed=0, **kwargs):
    proc = parse_program(source).procedures[0]
    return Interpreter(random.Random(seed), **kwargs).run(proc)


class TestBasics:
    def test_straight_line(self):
        result = run_source("x = 2; y = x * 3 + 1;")
        assert result.env == {"x": 2.0, "y": 7.0}
        assert result.ok

    def test_negation_and_division(self):
        result = run_source("x = -6; y = x / 2;")
        assert result.env["y"] == -3.0

    def test_branching(self):
        result = run_source("x = 5; if (x > 3) { y = 1; } else { y = 2; }")
        assert result.env["y"] == 1.0

    def test_loop(self):
        result = run_source("i = 0; s = 0; while (i < 5) { i = i + 1; s = s + i; }")
        assert result.env["s"] == 15.0

    def test_uninitialised_variable_gets_fresh_value(self):
        result = run_source("y = x + 0;", seed=3)
        assert "x" in result.env


class TestNondeterminism:
    def test_interval_assignment_in_range(self):
        for seed in range(10):
            result = run_source("x = [3, 7];", seed=seed)
            assert 3.0 <= result.env["x"] <= 7.0

    def test_havoc_varies_with_seed(self):
        values = {run_source("havoc(x);", seed=s).env["x"] for s in range(20)}
        assert len(values) > 1

    def test_deterministic_given_seed(self):
        a = run_source("x = [0, 100]; havoc(y);", seed=9).env
        b = run_source("x = [0, 100]; havoc(y);", seed=9).env
        assert a == b


class TestControl:
    def test_assume_failure_is_infeasible(self):
        with pytest.raises(InfeasiblePath):
            run_source("x = 1; assume(x > 5);")

    def test_assert_failure_recorded(self):
        result = run_source("x = 1; assert(x > 5);")
        assert not result.ok
        assert result.assertion_failures == ["x > 5"]

    def test_step_budget(self):
        with pytest.raises(StepBudgetExceeded):
            run_source("x = 0; while (x >= 0) { x = x + 1; }", max_steps=100)


class TestSampleRuns:
    def test_collects_completed_runs(self):
        proc = parse_program("x = [0, 3]; assume(x >= 1);").procedures[0]
        runs = sample_runs(proc, tries=40, seed=1)
        assert runs
        assert all(r.env["x"] >= 1.0 for r in runs)

    def test_skips_diverging_runs(self):
        proc = parse_program(
            "havoc(c); while (c == 1) { skip; }").procedures[0]
        runs = sample_runs(proc, tries=20, seed=2, max_steps=50)
        assert all(r.env["c"] != 1.0 for r in runs)
