"""Unit tests for inf-aware bound arithmetic."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.bounds import (
    INF,
    NEG_INF,
    badd,
    bhalf,
    bhalf_floor,
    bmax,
    bmin,
    bounds_equal,
    is_finite,
    is_trivial,
)

finite = st.floats(allow_nan=False, allow_infinity=False, width=32)
bound = st.one_of(finite, st.just(INF))


class TestPredicates:
    def test_inf_is_trivial(self):
        assert is_trivial(INF)
        assert not is_trivial(0.0)
        assert not is_trivial(-1e300)

    def test_finite(self):
        assert is_finite(3.5)
        assert is_finite(0.0)
        assert not is_finite(INF)
        assert not is_finite(NEG_INF)


class TestAdd:
    def test_inf_absorbs(self):
        assert badd(INF, 5.0) == INF
        assert badd(5.0, INF) == INF
        assert badd(INF, INF) == INF

    @given(finite, finite)
    def test_finite_add(self, a, b):
        assert badd(a, b) == a + b


class TestMinMax:
    @given(bound, bound)
    def test_bmin_is_min(self, a, b):
        assert bmin(a, b) == min(a, b)

    @given(bound, bound)
    def test_bmax_is_max(self, a, b):
        assert bmax(a, b) == max(a, b)

    @given(bound)
    def test_min_with_inf_is_identity(self, a):
        assert bmin(a, INF) == a
        assert bmax(a, INF) == INF


class TestHalving:
    def test_half_inf(self):
        assert bhalf(INF) == INF
        assert bhalf_floor(INF) == INF

    @given(finite)
    def test_half_finite(self, a):
        assert bhalf(a) == a / 2.0

    def test_half_floor_rounds_down(self):
        assert bhalf_floor(5.0) == 2.0
        assert bhalf_floor(-5.0) == -3.0
        assert bhalf_floor(4.0) == 2.0


class TestEquality:
    def test_inf_equal(self):
        assert bounds_equal(INF, INF)
        assert not bounds_equal(INF, 1e308)

    def test_tolerance_applies_to_finite_only(self):
        assert bounds_equal(1.0, 1.0 + 1e-12, tol=1e-9)
        assert not bounds_equal(1.0, 1.1, tol=1e-9)
        assert not bounds_equal(INF, 1.0, tol=1e9)
