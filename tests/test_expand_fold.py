"""Tests for the expand/fold summarised-dimension operations."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import INF, LinExpr, Octagon, OctConstraint


class TestExpand:
    def test_copy_inherits_bounds(self):
        o = Octagon.from_box([(1.0, 3.0), (0.0, 0.0)])
        e = o.expand(0, 2)
        assert e.n == 4
        assert e.bounds(2) == (1.0, 3.0)
        assert e.bounds(3) == (1.0, 3.0)
        assert e.bounds(0) == (1.0, 3.0)

    def test_copy_inherits_relations(self):
        o = Octagon.from_constraints(2, [OctConstraint.diff(0, 1, 2.0)])
        e = o.expand(0, 1)
        lo, hi = e.bound_linexpr(LinExpr({2: 1.0, 1: -1.0}))
        assert hi == 2.0

    def test_copies_unrelated_to_each_other(self):
        o = Octagon.from_box([(0.0, 5.0)])
        e = o.expand(0, 2)
        lo, hi = e.bound_linexpr(LinExpr({1: 1.0, 2: -1.0}))
        # Only the hull via the bounds, no equality.
        assert (lo, hi) == (-5.0, 5.0)

    def test_expand_bottom(self):
        assert Octagon.bottom(2).expand(0, 3).n == 5
        assert Octagon.bottom(2).expand(0, 3).is_bottom()

    def test_expand_rejects_zero_copies(self):
        with pytest.raises(ValueError):
            Octagon.top(1).expand(0, 0)

    def test_expand_soundness_by_points(self):
        """Any point where the copy takes a value admissible for v is in
        the expansion."""
        o = Octagon.from_constraints(2, [OctConstraint.sum(0, 1, 4.0),
                                         OctConstraint.lower(0, 0.0)])
        e = o.expand(0, 1)
        rng = np.random.default_rng(2)
        for _ in range(40):
            x, y = rng.uniform(-3, 6, 2)
            if not o.contains_point([x, y]):
                continue
            x2 = rng.uniform(-3, 6)
            if o.contains_point([x2, y]):
                assert e.contains_point([x, y, x2])


class TestFold:
    def test_fold_is_join_of_bounds(self):
        o = Octagon.from_box([(0.0, 1.0), (5.0, 9.0), (2.0, 2.0)])
        f = o.fold([0, 1])
        assert f.n == 2
        assert f.bounds(0) == (0.0, 9.0)  # hull of the two folded vars
        assert f.bounds(1) == (2.0, 2.0)

    def test_fold_keeps_common_relations(self):
        # Both folded vars are <= z, so the summary is <= z.
        o = Octagon.from_constraints(3, [OctConstraint.diff(0, 2, 0.0),
                                         OctConstraint.diff(1, 2, 0.0)])
        f = o.fold([0, 1])
        assert f.sat_constraint(OctConstraint.diff(0, 1, 0.0))

    def test_fold_drops_one_sided_relations(self):
        # Only var 0 is <= z; the summary may be var 1, so no relation.
        o = Octagon.from_constraints(3, [OctConstraint.diff(0, 2, 0.0)])
        f = o.fold([0, 1])
        assert not f.sat_constraint(OctConstraint.diff(0, 1, 1000.0))

    def test_fold_validation(self):
        with pytest.raises(ValueError):
            Octagon.top(3).fold([1])
        with pytest.raises(ValueError):
            Octagon.top(3).fold([0, 7])

    def test_fold_bottom(self):
        assert Octagon.bottom(3).fold([0, 1]).is_bottom()

    def test_fold_soundness_by_points(self):
        """Replacing the summary's value by either folded variable's
        value stays inside the fold."""
        o = Octagon.from_constraints(3, [OctConstraint.sum(0, 2, 6.0),
                                         OctConstraint.upper(1, 3.0)])
        f = o.fold([0, 1])
        rng = np.random.default_rng(3)
        for _ in range(40):
            pt = rng.uniform(-4, 6, 3)
            if o.contains_point(pt):
                assert f.contains_point([pt[0], pt[2]])
                assert f.contains_point([pt[1], pt[2]])


class TestExpandFoldInterplay:
    @settings(max_examples=30, deadline=None)
    @given(st.integers(0, 1), st.integers(1, 3))
    def test_fold_after_expand_overapproximates(self, v, k):
        o = Octagon.from_constraints(2, [OctConstraint.sum(0, 1, 4.0),
                                         OctConstraint.lower(0, -1.0),
                                         OctConstraint.upper(1, 3.0)])
        e = o.expand(v, k)
        folded = e.fold([v] + list(range(2, 2 + k)))
        assert o.is_leq(folded)
