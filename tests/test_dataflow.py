"""Tests for the classic dataflow substrate (liveness, reaching
definitions, constant propagation)."""

from repro.dataflow import (
    constant_propagation,
    liveness,
    reaching_definitions,
)
from repro.dataflow.constprop import NAC
from repro.dataflow.liveness import use_def, vars_of_aexpr, vars_of_bexpr
from repro.frontend import build_cfg, parse_program


def cfg_of(source):
    return build_cfg(parse_program(source).procedures[0])


class TestUseDef:
    def test_assign(self):
        cfg = cfg_of("x = y + z;")
        used, defined = use_def(cfg.edges[0])
        assert used == {"y", "z"}
        assert defined == {"x"}

    def test_self_assign_uses_and_defines(self):
        cfg = cfg_of("x = x + 1;")
        used, defined = use_def(cfg.edges[0])
        assert used == {"x"} and defined == {"x"}

    def test_assume_uses_only(self):
        cfg = cfg_of("assume(a < b && !(c > 1));")
        used, defined = use_def(cfg.edges[0])
        assert used == {"a", "b", "c"} and defined == set()

    def test_havoc_defines(self):
        cfg = cfg_of("havoc(w);")
        used, defined = use_def(cfg.edges[0])
        assert used == set() and defined == {"w"}


class TestLiveness:
    def test_dead_assignment(self):
        cfg = cfg_of("x = 1; y = 2; assert(y > 0);")
        live = liveness(cfg)
        # x is never read: dead at every node.
        assert all("x" not in live[node] for node in range(cfg.n_nodes))

    def test_live_through_branch(self):
        cfg = cfg_of("x = 1; if (c > 0) { y = x; } else { y = 2; } z = y;")
        live = liveness(cfg)
        assert "x" in live[cfg.entry] or "x" in live[1]
        # y is live right before z = y.
        z_edge = [e for e in cfg.edges if e.describe().startswith("z")][0]
        assert "y" in live[z_edge.src]

    def test_loop_keeps_counter_live(self):
        cfg = cfg_of("i = 0; while (i < 5) { i = i + 1; }")
        live = liveness(cfg)
        head = next(iter(cfg.loop_heads))
        assert "i" in live[head]


class TestReachingDefinitions:
    def test_kill(self):
        cfg = cfg_of("x = 1; x = 2; y = x;")
        reach = reaching_definitions(cfg)
        defs_at_exit = {d for d in reach[cfg.exit]}
        x_defs = [d for d in defs_at_exit if d[1] == "x"]
        assert len(x_defs) == 1  # x = 1 was killed

    def test_branch_merges(self):
        cfg = cfg_of("if (c > 0) { x = 1; } else { x = 2; } y = x;")
        reach = reaching_definitions(cfg)
        y_edge = [e for e in cfg.edges if e.describe().startswith("y")][0]
        x_defs = [d for d in reach[y_edge.src] if d[1] == "x"]
        assert len(x_defs) == 2

    def test_loop_back_edge(self):
        cfg = cfg_of("i = 0; while (i < 5) { i = i + 1; }")
        reach = reaching_definitions(cfg)
        head = next(iter(cfg.loop_heads))
        i_defs = [d for d in reach[head] if d[1] == "i"]
        assert len(i_defs) == 2  # initial def and the loop increment


class TestConstantPropagation:
    def test_chain(self):
        cfg = cfg_of("x = 2; y = x + 3; z = y * x;")
        cp = constant_propagation(cfg)
        assert cp.constant_at(cfg.exit, "x") == 2.0
        assert cp.constant_at(cfg.exit, "y") == 5.0
        assert cp.constant_at(cfg.exit, "z") == 10.0

    def test_branch_conflict(self):
        cfg = cfg_of("if (c > 0) { x = 1; } else { x = 2; } y = x;")
        cp = constant_propagation(cfg)
        assert cp.constant_at(cfg.exit, "x") is None

    def test_branch_agreement(self):
        cfg = cfg_of("if (c > 0) { x = 7; } else { x = 7; }")
        cp = constant_propagation(cfg)
        assert cp.constant_at(cfg.exit, "x") == 7.0

    def test_havoc_is_nac(self):
        cfg = cfg_of("x = 1; havoc(x);")
        cp = constant_propagation(cfg)
        assert cp.constant_at(cfg.exit, "x") is None

    def test_interval_assignment(self):
        cfg = cfg_of("x = [3, 3]; y = [0, 1];")
        cp = constant_propagation(cfg)
        assert cp.constant_at(cfg.exit, "x") == 3.0
        assert cp.constant_at(cfg.exit, "y") is None

    def test_zero_annihilates(self):
        cfg = cfg_of("havoc(w); x = w * 0;")
        cp = constant_propagation(cfg)
        assert cp.constant_at(cfg.exit, "x") == 0.0

    def test_loop_invariant_constant(self):
        cfg = cfg_of("k = 4; i = 0; while (i < 3) { i = i + k; }")
        cp = constant_propagation(cfg)
        assert cp.constant_at(cfg.exit, "k") == 4.0
        assert cp.constant_at(cfg.exit, "i") is None
