"""Property tests: incremental closure equals full closure on
almost-closed inputs (both the NumPy and the scalar half-matrix
variants)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from dbm_strategies import coherent_dbms
from repro.core.apron_octagon import _incremental_closure_half
from repro.core.closure_incremental import incremental_closure
from repro.core.closure_reference import closure_full_scalar
from repro.core.constraints import OctConstraint, dbm_cells
from repro.core.densemat import is_coherent, matrices_equal
from repro.core.halfmat import HalfMat


@st.composite
def almost_closed_dbms(draw):
    """A closed DBM with fresh constraints meeted on one variable."""
    m = draw(coherent_dbms(min_n=2, max_n=6))
    if closure_full_scalar(m):
        return None
    n = m.shape[0] // 2
    v = draw(st.integers(0, n - 1))
    k = draw(st.integers(1, 3))
    for _ in range(k):
        w = draw(st.integers(0, n - 1))
        c = float(draw(st.integers(-6, 12)))
        if w == v:
            cons = (OctConstraint.upper(v, c) if draw(st.booleans())
                    else OctConstraint.lower(v, c))
        else:
            a = draw(st.sampled_from([-1, 1]))
            b = draw(st.sampled_from([-1, 1]))
            cons = OctConstraint(v, a, w, b, c)
        for r, s, cc in dbm_cells(cons):
            m[r, s] = min(m[r, s], cc)
            m[s ^ 1, r ^ 1] = m[r, s]
    return m, v


@settings(max_examples=120, deadline=None)
@given(almost_closed_dbms())
def test_incremental_equals_full(case):
    if case is None:
        return
    m, v = case
    ref = m.copy()
    empty_ref = closure_full_scalar(ref)
    inc = m.copy()
    assert incremental_closure(inc, v) == empty_ref
    if not empty_ref:
        assert matrices_equal(ref, inc, tol=1e-9)
        assert is_coherent(inc)


@settings(max_examples=80, deadline=None)
@given(almost_closed_dbms())
def test_scalar_incremental_equals_full(case):
    if case is None:
        return
    m, v = case
    ref = m.copy()
    empty_ref = closure_full_scalar(ref)
    half = HalfMat.from_full(m)
    assert _incremental_closure_half(half, v) == empty_ref
    if not empty_ref:
        assert matrices_equal(ref, half.to_full(), tol=1e-9)


def test_incremental_rejects_bad_variable():
    import pytest
    from repro.core.densemat import new_top
    with pytest.raises(IndexError):
        incremental_closure(new_top(2), 5)


def test_incremental_on_already_closed_is_identity():
    from repro.core.densemat import new_top
    m = new_top(3)
    for r, s, c in dbm_cells(OctConstraint.diff(0, 1, 4.0)):
        m[r, s] = c
        m[s ^ 1, r ^ 1] = c
    assert not closure_full_scalar(m)
    out = m.copy()
    assert not incremental_closure(out, 2)
    assert matrices_equal(m, out, tol=1e-9)
