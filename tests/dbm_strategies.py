"""Shared hypothesis strategies and helpers for DBM-level tests.

Central place for generating random coherent DBMs (optionally with a
block structure so independent components exist), plus the sampling
helpers used by soundness tests.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np
from hypothesis import strategies as st

from repro.core.densemat import new_top


def make_coherent_dbm(n: int, entries: Sequence, *, blocks: Optional[List[List[int]]] = None) -> np.ndarray:
    """Build a coherent DBM from (i, j, c) triples (block-restricted)."""
    m = new_top(n)
    if blocks is not None:
        allowed = [np.array([2 * v + s for v in block for s in (0, 1)])
                   for block in blocks]
    for (i, j, c) in entries:
        if blocks is not None:
            # Remap the free coordinates into one of the blocks.
            block = allowed[(i + j) % len(allowed)]
            i = int(block[i % len(block)])
            j = int(block[j % len(block)])
        if i == j:
            continue
        m[i, j] = min(m[i, j], float(c))
        m[j ^ 1, i ^ 1] = m[i, j]
    return m


def dbm_entries(n: int, max_entries: int = 40):
    """Strategy for raw entry triples over a 2n x 2n DBM."""
    dim = 2 * n
    triple = st.tuples(st.integers(0, dim - 1), st.integers(0, dim - 1),
                       st.integers(-8, 25))
    return st.lists(triple, max_size=max_entries)


@st.composite
def coherent_dbms(draw, min_n: int = 1, max_n: int = 6):
    """Random coherent DBMs (possibly empty octagons)."""
    n = draw(st.integers(min_n, max_n))
    entries = draw(dbm_entries(n))
    return make_coherent_dbm(n, entries)


@st.composite
def block_dbms(draw, min_n: int = 2, max_n: int = 8):
    """Random coherent DBMs whose constraints respect a block partition."""
    n = draw(st.integers(min_n, max_n))
    n_blocks = draw(st.integers(1, min(3, n)))
    vars_ = list(range(n))
    blocks = [vars_[i::n_blocks + 1] for i in range(n_blocks)]
    blocks = [b for b in blocks if b]
    entries = draw(dbm_entries(n))
    return make_coherent_dbm(n, entries, blocks=blocks), blocks


@st.composite
def octagons(draw, min_n: int = 1, max_n: int = 5):
    """Random (possibly inconsistent, unclosed) Octagon values."""
    from repro.core.densemat import count_nni
    from repro.core.octagon import Octagon
    from repro.core.partition import Partition

    m = draw(coherent_dbms(min_n, max_n))
    n = m.shape[0] // 2
    return Octagon(n, m, Partition.from_matrix(m), count_nni(m))


@st.composite
def octagon_mutations(draw, n: int):
    """A random in-place mutation, as ``(method_name, args)``.

    These are the internal write paths guarded by the COW layer's
    ``_write_mat``; public operators copy first and funnel into them.
    """
    from repro.core.constraints import OctConstraint

    v = draw(st.integers(0, n - 1))
    w = draw(st.integers(0, n - 1))
    c = float(draw(st.integers(-8, 8)))
    cons = draw(st.sampled_from([
        OctConstraint.upper(v, c),
        OctConstraint.lower(v, c),
        OctConstraint.diff(v, w, c) if v != w else OctConstraint.upper(v, c),
    ]))
    return draw(st.sampled_from([
        ("_meet_constraint_cells", (cons,)),
        ("_close_in_place", ()),
    ]))


def sample_points(m: np.ndarray, rng: np.random.Generator, count: int = 50):
    """Random concrete points, biased towards a DBM's bound region."""
    n = m.shape[0] // 2
    return rng.integers(-30, 30, size=(count, n)).astype(float)


def satisfies(m: np.ndarray, point: np.ndarray, tol: float = 1e-9) -> bool:
    """Does a concrete point satisfy every finite inequality of ``m``?"""
    n = m.shape[0] // 2
    vhat = np.empty(2 * n)
    vhat[0::2] = point
    vhat[1::2] = -point
    diff = vhat[None, :] - vhat[:, None]
    finite = np.isfinite(m)
    return bool(np.all(diff[finite] <= m[finite] + tol))
