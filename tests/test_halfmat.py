"""Tests for the APRON-layout flat half-matrix storage."""

import numpy as np
import pytest
from hypothesis import given

from dbm_strategies import coherent_dbms
from repro.core.bounds import INF
from repro.core.densemat import is_coherent
from repro.core.halfmat import HalfMat
from repro.core.indexing import half_size


class TestConstruction:
    def test_top_has_zero_diagonal(self):
        m = HalfMat(3)
        assert len(m.data) == half_size(3)
        for i in range(6):
            assert m.get(i, i) == 0.0
        assert m.get(0, 1) == INF
        assert m.count_finite() == 6

    def test_fill_top_resets(self):
        m = HalfMat(2)
        m.set(0, 1, 3.0)
        m.fill_top()
        assert m.get(0, 1) == INF
        assert m.get(2, 2) == 0.0


class TestAccess:
    def test_set_get_through_coherence(self):
        m = HalfMat(2)
        # (0, 2) is in the upper triangle; it aliases (3, 1).
        m.set(0, 2, 7.0)
        assert m.get(0, 2) == 7.0
        assert m.get(3, 1) == 7.0

    def test_min_set_only_tightens(self):
        m = HalfMat(1)
        m.min_set(1, 0, 5.0)
        assert m.get(1, 0) == 5.0
        m.min_set(1, 0, 9.0)
        assert m.get(1, 0) == 5.0
        m.min_set(1, 0, 2.0)
        assert m.get(1, 0) == 2.0

    def test_iter_entries_covers_half(self):
        m = HalfMat(2)
        coords = [(i, j) for i, j, _ in m.iter_entries()]
        assert len(coords) == half_size(2)
        assert len(set(coords)) == half_size(2)


class TestConversions:
    @given(coherent_dbms())
    def test_full_roundtrip(self, full):
        half = HalfMat.from_full(full)
        back = half.to_full()
        assert np.array_equal(
            np.where(np.isinf(full), 1e300, full),
            np.where(np.isinf(back), 1e300, back))
        assert is_coherent(back)

    def test_from_full_rejects_odd_shapes(self):
        with pytest.raises(ValueError):
            HalfMat.from_full(np.zeros((3, 3)))
        with pytest.raises(ValueError):
            HalfMat.from_full(np.zeros((2, 4)))


class TestEquality:
    def test_copy_is_deep(self):
        m = HalfMat(2)
        c = m.copy()
        c.set(1, 0, 1.0)
        assert m.get(1, 0) == INF
        assert m != c
        assert m == m.copy()

    def test_unhashable(self):
        with pytest.raises(TypeError):
            hash(HalfMat(1))
