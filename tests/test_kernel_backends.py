"""Differential tests for the pluggable kernel backends.

Every backend must be indistinguishable from the NumPy reference:
bit-identical DBM matrices (``tobytes`` equality -- not ``allclose``),
identical return values, identical operation counts, and identical
17-benchmark suite verdicts and bounds.

The parametrisation runs over :func:`kernels.available_backends`, so
when numba is not installed the numba rows are simply *not generated*
-- the numpy rows still execute every parity assertion (zero skips),
and a CI leg with numba installed runs the real cross-backend
comparison with the same code.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from dbm_strategies import coherent_dbms
from repro.core import kernels
from repro.core.closure_apron import closure_apron
from repro.core.closure_dense import closure_dense_numpy, shortest_path_dense_numpy
from repro.core.closure_incremental import incremental_closure
from repro.core.closure_sparse import closure_sparse, shortest_path_sparse
from repro.core.densemat import count_nni
from repro.core.halfmat import HalfMat
from repro.core.stats import OpCounter
from repro.core.strengthen import strengthen_numpy, strengthen_sparse_numpy
from repro.obs import events
from repro.service.job import AnalysisJob
from repro.service.scheduler import run_batch
from repro.service.suite import suite_jobs

BACKENDS = kernels.available_backends()


def assert_bit_identical(actual: np.ndarray, expected: np.ndarray) -> None:
    """Bitwise matrix equality: every float64, including NaN payloads."""
    assert actual.shape == expected.shape
    assert actual.tobytes() == expected.tobytes()


class TestRegistry:
    def test_numpy_always_available(self):
        assert BACKENDS[0] == "numpy"

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown kernel backend"):
            kernels.resolve("cuda")

    def test_resolve_is_deterministic(self):
        assert kernels.resolve("auto") == kernels.resolve("auto")
        assert kernels.resolve(None) == kernels.resolve(kernels.default_backend())

    def test_auto_resolves_to_concrete_backend(self):
        assert kernels.resolve("auto") in ("numpy", "numba")

    def test_backend_context_restores(self):
        before = kernels.active_backend()
        with kernels.backend("numpy") as active:
            assert active == "numpy"
            assert kernels.active_backend() == "numpy"
        assert kernels.active_backend() == before

    def test_every_backend_serves_all_kernels(self):
        for name in BACKENDS:
            with kernels.backend(name):
                m = np.zeros((4, 4))
                assert kernels.count_nni(np.where(np.eye(4) > 0, 0.0, np.inf)) >= 0
                kernels.strengthen(m)

    def test_kernel_calls_counted_per_backend(self):
        for name in BACKENDS:
            with kernels.backend(name):
                before = dict(kernels._CALLS)
                kernels.count_nni(np.zeros((4, 4)))
                assert kernels._CALLS[name] == before[name] + 1

    def test_explicit_numba_fallback_is_visible(self, monkeypatch):
        reason = kernels.numba_unavailable_reason()
        if reason is None:
            # numba works here: an explicit request must NOT fall back.
            assert kernels.resolve("numba") == "numba"
            return
        # Fallback announcements are deduplicated per process; reset the
        # memo so this test observes the one-time event and counter.
        monkeypatch.setattr(kernels, "_announced", set())
        fallbacks = kernels._FALLBACKS
        with events.capture() as caught:
            assert kernels.resolve("numba") == "numpy"
            assert kernels.resolve("numba") == "numpy"  # announced once
        assert kernels._FALLBACKS == fallbacks + 1
        warned = [e for e in caught if e.name == "kernel_backend_fallback"]
        assert len(warned) == 1
        assert warned[0].level == events.WARNING
        assert warned[0].fields["actual"] == "numpy"


class TestCacheKeyHonesty:
    def test_resolved_backend_in_options(self):
        job = AnalysisJob(source="x = 1;", kernel_backend="numpy")
        assert job.options()["kernel_backend"] == "numpy"
        auto = AnalysisJob(source="x = 1;", kernel_backend="auto")
        assert auto.options()["kernel_backend"] == kernels.resolve("auto")

    def test_backends_get_distinct_keys_when_both_available(self):
        a = AnalysisJob(source="x = 1;", kernel_backend="numpy")
        b = AnalysisJob(source="x = 1;", kernel_backend="numba")
        if kernels.numba_unavailable_reason() is None:
            assert a.key() != b.key()
        else:
            # Graceful fallback: the numba request is honestly recorded
            # as having been computed by numpy.
            assert a.key() == b.key()

    def test_keep_invariants_changes_key(self):
        a = AnalysisJob(source="x = 1;")
        b = AnalysisJob(source="x = 1;", keep_invariants=True)
        assert a.key() != b.key()


@pytest.mark.parametrize("backend", BACKENDS)
class TestKernelParity:
    """Per-kernel differential: backend vs the raw reference functions."""

    @settings(max_examples=40, deadline=None)
    @given(m=coherent_dbms(min_n=1, max_n=6))
    def test_dense_closure(self, backend, m):
        ref, ref_counter = m.copy(), OpCounter()
        ref_empty = closure_dense_numpy(ref, ref_counter)
        got, counter = m.copy(), OpCounter()
        with kernels.backend(backend):
            empty = kernels.dense_closure(got, counter)
        assert empty == ref_empty
        assert counter.mins == ref_counter.mins
        if not empty:
            assert_bit_identical(got, ref)

    @settings(max_examples=40, deadline=None)
    @given(m=coherent_dbms(min_n=1, max_n=6))
    def test_dense_shortest_path(self, backend, m):
        ref, ref_counter = m.copy(), OpCounter()
        shortest_path_dense_numpy(ref, ref_counter)
        got, counter = m.copy(), OpCounter()
        with kernels.backend(backend):
            kernels.dense_shortest_path(got, counter)
        assert counter.mins == ref_counter.mins
        assert_bit_identical(got, ref)

    @settings(max_examples=40, deadline=None)
    @given(m=coherent_dbms(min_n=1, max_n=6))
    def test_sparse_shortest_path(self, backend, m):
        ref, ref_counter = m.copy(), OpCounter()
        ref_count = shortest_path_sparse(ref, ref_counter)
        got, counter = m.copy(), OpCounter()
        with kernels.backend(backend):
            count = kernels.sparse_shortest_path(got, counter)
        assert count == ref_count
        assert counter.mins == ref_counter.mins
        assert_bit_identical(got, ref)

    @settings(max_examples=40, deadline=None)
    @given(m=coherent_dbms(min_n=1, max_n=6))
    def test_sparse_closure(self, backend, m):
        ref, ref_counter = m.copy(), OpCounter()
        ref_empty = closure_sparse(ref, ref_counter)
        got, counter = m.copy(), OpCounter()
        with kernels.backend(backend):
            empty = kernels.sparse_closure(got, counter)
        assert empty == ref_empty
        assert counter.mins == ref_counter.mins
        if not empty:
            assert_bit_identical(got, ref)

    @settings(max_examples=40, deadline=None)
    @given(m=coherent_dbms(min_n=1, max_n=6))
    def test_strengthen_sparse(self, backend, m):
        ref = m.copy()
        ref_count = strengthen_sparse_numpy(ref)
        got = m.copy()
        with kernels.backend(backend):
            count = kernels.strengthen_sparse(got)
        assert count == ref_count
        assert_bit_identical(got, ref)

    @settings(max_examples=40, deadline=None)
    @given(m=coherent_dbms(min_n=1, max_n=6), data=st.data())
    def test_incremental_closure(self, backend, m, data):
        n = m.shape[0] // 2
        v = data.draw(st.integers(0, n - 1))
        ref, ref_counter = m.copy(), OpCounter()
        ref_empty = incremental_closure(ref, v, ref_counter)
        got, counter = m.copy(), OpCounter()
        with kernels.backend(backend):
            empty = kernels.incremental_closure(got, v, counter)
        assert empty == ref_empty
        assert counter.mins == ref_counter.mins
        if not empty:
            assert_bit_identical(got, ref)

    @settings(max_examples=40, deadline=None)
    @given(m=coherent_dbms(min_n=1, max_n=6))
    def test_strengthen(self, backend, m):
        ref = m.copy()
        strengthen_numpy(ref)
        got = m.copy()
        with kernels.backend(backend):
            kernels.strengthen(got)
        assert_bit_identical(got, ref)

    @settings(max_examples=40, deadline=None)
    @given(m=coherent_dbms(min_n=1, max_n=6))
    def test_count_nni(self, backend, m):
        with kernels.backend(backend):
            assert kernels.count_nni(m) == count_nni(m)

    @settings(max_examples=40, deadline=None)
    @given(m=coherent_dbms(min_n=1, max_n=5))
    def test_apron_closure(self, backend, m):
        ref_half = HalfMat.from_full(m)
        ref_counter = OpCounter()
        ref_empty = closure_apron(ref_half, ref_counter)
        half = HalfMat.from_full(m)
        counter = OpCounter()
        with kernels.backend(backend):
            empty = kernels.apron_closure(half, counter)
        assert empty == ref_empty
        assert counter.mins == ref_counter.mins
        if not empty:
            # The scalar half layout stores Python floats; bit-identical
            # means identical float64 payloads entry by entry.
            got = np.asarray(half.data, dtype=np.float64)
            want = np.asarray(ref_half.data, dtype=np.float64)
            assert_bit_identical(got, want)


@pytest.mark.parametrize("backend", BACKENDS)
class TestSuiteParity:
    """Full 17-benchmark parity: verdicts AND bounds per backend."""

    def _fingerprint(self, batch):
        out = {}
        for r in batch.results:
            boxes = {p.name: p.box for p in r.procedures}
            out[r.label] = (r.outcome, sorted(r.verdicts()), boxes)
        return out

    def test_suite_verdicts_and_bounds_match_reference(self, backend):
        with kernels.backend("numpy"):
            reference = run_batch(
                suite_jobs("small", kernel_backend="numpy"),
                workers=1, cache=None, journal=None)
        with kernels.backend(backend):
            under_test = run_batch(
                suite_jobs("small", kernel_backend=backend),
                workers=1, cache=None, journal=None)
        assert under_test.outcome_counts() == {"ok": 17}
        assert self._fingerprint(under_test) == self._fingerprint(reference)
        for r in under_test.results:
            assert r.kernel_backend == backend
