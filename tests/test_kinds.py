"""Tests for the DBM kind policy (paper section 3.5)."""

import pytest

from repro.core.indexing import half_size
from repro.core.kinds import DEFAULT_POLICY, DbmKind, SwitchPolicy


class TestSparsityThreshold:
    def test_paper_default(self):
        assert DEFAULT_POLICY.threshold == 0.75
        assert DEFAULT_POLICY.decompose

    def test_is_sparse_boundary(self):
        policy = SwitchPolicy(threshold=0.75)
        n = 10
        size = half_size(n)
        # D = 1 - nni/size >= 0.75  <=>  nni <= size/4.
        assert policy.is_sparse(size // 4, n)
        assert not policy.is_sparse(size // 2, n)

    def test_zero_vars(self):
        assert not SwitchPolicy().is_sparse(0, 0)


class TestKindSelection:
    def test_no_components_is_top(self):
        assert SwitchPolicy().kind_for(10, 5, 0) == DbmKind.TOP

    def test_multi_component_is_decomposed(self):
        assert SwitchPolicy().kind_for(10, 5, 3) == DbmKind.DECOMPOSED

    def test_single_component_density_split(self):
        policy = SwitchPolicy(threshold=0.75)
        n = 10
        assert policy.kind_for(half_size(n), n, 1) == DbmKind.DENSE
        assert policy.kind_for(2 * n, n, 1) == DbmKind.SPARSE

    def test_decompose_off_forces_dense(self):
        policy = SwitchPolicy(decompose=False)
        assert policy.kind_for(2, 10, 5) == DbmKind.DENSE
        assert policy.kind_for(2, 10, 0) == DbmKind.TOP

    def test_str(self):
        assert str(DbmKind.DECOMPOSED) == "decomposed"
