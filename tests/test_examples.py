"""Every example script must run cleanly from a fresh process."""

import os
import subprocess
import sys

import pytest

EXAMPLES = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
                        "examples")


def run_example(name, *args):
    return subprocess.run(
        [sys.executable, os.path.join(EXAMPLES, name), *args],
        capture_output=True, text=True, timeout=300)


@pytest.mark.parametrize("script", [
    "quickstart.py",
    "loop_invariants.py",
    "array_bounds.py",
    "decomposition_demo.py",
    "precision_study.py",
    "backward_analysis.py",
])
def test_example_runs(script):
    proc = run_example(script)
    assert proc.returncode == 0, proc.stderr
    assert proc.stdout.strip()


def test_quickstart_shows_decomposition():
    proc = run_example("quickstart.py")
    assert "independent components" in proc.stdout


def test_loop_invariants_contrast():
    out = run_example("loop_invariants.py").stdout
    assert "octagon domain" in out
    assert "VERIFIED" in out
    assert "cannot prove" in out  # the interval domain fails the relational one


def test_array_bounds_octagon_proves_all():
    out = run_example("array_bounds.py").stdout
    octagon_part = out.split("--- interval domain ---")[0]
    assert "all safe" in octagon_part


def test_analyzer_cli_demo():
    proc = run_example("analyzer_cli.py", "--invariants")
    assert proc.returncode == 0, proc.stderr
    assert "assertions verified" in proc.stdout
    assert "point 0" in proc.stdout


def test_analyzer_cli_on_file(tmp_path):
    src = tmp_path / "prog.mini"
    src.write_text("x = [0, 3]; assert(x <= 3); assert(x >= 1);")
    proc = run_example("analyzer_cli.py", str(src))
    assert proc.returncode == 1  # one assertion cannot be proven
    assert "FAILED TO PROVE" in proc.stdout


def test_precision_study_ladder():
    out = run_example("precision_study.py").stdout
    # The precision ladder: interval fails the relational rows, the
    # octagon proves everything.
    lines = [l for l in out.splitlines() if l.startswith("sum")]
    assert lines and "0/1" in lines[0] and "1/1 *" in lines[0]


def test_backward_analysis_example():
    out = run_example("backward_analysis.py").stdout
    assert "PROVED UNREACHABLE" in out
    assert "-x <= -61" in out
