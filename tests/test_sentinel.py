"""Tests for the paranoid DBM integrity sentinel."""

import numpy as np
import pytest

from repro.analysis.analyzer import Analyzer
from repro.core import stats
from repro.core.constraints import OctConstraint
from repro.core.octagon import Octagon
from repro.core.sentinel import (
    check,
    paranoid_enabled,
    set_paranoid,
    validate_octagon,
)
from repro.errors import IntegrityError
from repro.testing import faults

LOOP_SOURCE = """
proc count {
  x = 0;
  y = 3;
  while (x < 10) { x = x + 1; y = y + 2; }
  assert (x >= 10);
}
"""


@pytest.fixture
def paranoid():
    previous = set_paranoid(True)
    yield
    set_paranoid(previous)


def _chain() -> Octagon:
    """A closed octagon whose closure derived a transitive bound."""
    return (Octagon.top(3)
            .meet_constraint(OctConstraint.diff(0, 1, 1.0))
            .meet_constraint(OctConstraint.diff(1, 2, 1.0)))


class TestToggle:
    def test_set_paranoid_returns_previous(self):
        previous = set_paranoid(True)
        try:
            assert paranoid_enabled()
            assert set_paranoid(False) is True
            assert not paranoid_enabled()
        finally:
            set_paranoid(previous)

    def test_check_is_noop_when_disabled(self):
        previous = set_paranoid(False)
        try:
            broken = _chain()
            faults.corrupt_octagon(broken)
            check(broken)  # must not raise: sentinel is off
        finally:
            set_paranoid(previous)


class TestValidOctagons:
    def test_lattice_ops_pass_paranoid(self, paranoid):
        a = _chain()
        b = Octagon.top(3).meet_constraint(OctConstraint.upper(0, 5.0))
        for result in (a.meet(b), a.join(b), a.widening(b), a.narrowing(b),
                       a.forget(1), a.closure()):
            validate_octagon(result)

    def test_whole_analysis_passes_paranoid(self, paranoid):
        result = Analyzer().analyze(LOOP_SOURCE)
        assert result.all_verified

    def test_paranoid_checks_counted(self, paranoid):
        with stats.collecting() as collector:
            _chain().closure()
        assert collector.merged_counters()["paranoid_checks"] >= 1


class TestCorruptionDetection:
    def test_coherence_break_caught(self):
        broken = _chain()
        faults.corrupt_octagon(broken)
        with pytest.raises(IntegrityError) as exc_info:
            validate_octagon(broken)
        assert exc_info.value.check == "coherence"

    def test_nni_drift_caught(self):
        broken = _chain()
        broken.nni += 1
        with pytest.raises(IntegrityError) as exc_info:
            validate_octagon(broken)
        assert exc_info.value.check == "nni"

    def test_dirty_diagonal_caught(self):
        broken = _chain()
        broken._cow.arr[2, 2] = -1.0
        with pytest.raises(IntegrityError) as exc_info:
            validate_octagon(broken)
        assert exc_info.value.check == "diagonal"

    def test_false_closed_claim_caught(self):
        oct_ = _chain()
        assert oct_.closed
        m = oct_._cow.arr
        # Loosen the transitively derived x0 - x2 <= 2 bound (keeping
        # coherence and nni intact): the path through x1 now tightens
        # it, so the "closed" claim is a lie.
        locs = np.argwhere(m == 2.0)
        assert len(locs) > 0
        i, j = map(int, locs[0])
        m[i, j] = 50.0
        m[j ^ 1, i ^ 1] = 50.0
        with pytest.raises(IntegrityError) as exc_info:
            validate_octagon(oct_)
        assert exc_info.value.check == "closed"

    def test_integrity_error_names_invariant(self):
        broken = _chain()
        faults.corrupt_octagon(broken)
        with pytest.raises(IntegrityError, match="coherence"):
            validate_octagon(broken)


class TestFaultPoint:
    def test_dbm_corrupt_fault_caught_by_sentinel(self, paranoid):
        a = Octagon.top(2).meet_constraint(OctConstraint.diff(0, 1, 1.0))
        b = Octagon.top(2).meet_constraint(OctConstraint.diff(0, 1, 4.0))
        widened = a.widening(b)  # not closed: forces a full closure
        with faults.injected("dbm_corrupt"):
            with pytest.raises(IntegrityError):
                widened.closure()

    def test_dbm_corrupt_disarmed_is_clean(self, paranoid):
        a = Octagon.top(2).meet_constraint(OctConstraint.diff(0, 1, 1.0))
        b = Octagon.top(2).meet_constraint(OctConstraint.diff(0, 1, 4.0))
        validate_octagon(a.widening(b).closure())
