"""Tests for the benchmark workload suite."""

import pytest

from repro.frontend import parse_program
from repro.workloads import (
    BENCHMARKS,
    fig2_program,
    gen_cpa_like,
    gen_dizy_like,
    gen_dps_like,
    gen_tb_like,
    get_benchmark,
    load_suite,
    run_workload,
)


class TestGenerators:
    @pytest.mark.parametrize("gen,kwargs", [
        (gen_cpa_like, dict(n_vars=5, n_loops=2, stmts_per_loop=4)),
        (gen_tb_like, dict(n_groups=2, group_size=3)),
        (gen_dps_like, dict(proc_sizes=[3, 5])),
        (gen_dizy_like, dict(n_procs=3, max_vars=5)),
    ])
    def test_generated_source_parses(self, gen, kwargs):
        source = gen(42, **kwargs)
        program = parse_program(source)
        assert program.procedures

    @pytest.mark.parametrize("gen", [gen_cpa_like, gen_tb_like,
                                     gen_dps_like, gen_dizy_like])
    def test_deterministic(self, gen):
        assert gen(7) == gen(7)
        assert gen(7) != gen(8)

    def test_fig2_program(self):
        program = parse_program(fig2_program())
        assert program.procedures[0].variables == ["x", "y", "m"]

    def test_tb_groups_are_independent(self):
        """The TB generator's handler variables must form independent
        octagon components (that is the whole point of the family)."""
        from repro.analysis.analyzer import Analyzer
        src = gen_tb_like(3, n_groups=3, group_size=3)
        res = Analyzer(domain="octagon").analyze(src, collect=True)
        # At least one closure ran on a decomposed DBM.
        kinds = {rec.kind for rec in res.octagon_stats.closures}
        assert "decomposed" in kinds


class TestSuite:
    def test_seventeen_benchmarks(self):
        assert len(BENCHMARKS) == 17
        assert len({b.name for b in BENCHMARKS}) == 17

    def test_families(self):
        fams = {b.analyzer for b in BENCHMARKS}
        assert fams == {"CPA", "TB", "DPS", "DIZY"}
        assert len(load_suite("CPA")) == 4
        assert len(load_suite("TB")) == 4
        assert len(load_suite("DPS")) == 6
        assert len(load_suite("DIZY")) == 3

    def test_lookup(self):
        assert get_benchmark("crypt").analyzer == "DPS"
        with pytest.raises(KeyError):
            get_benchmark("nonsense")

    def test_paper_stats_present(self):
        crypt = get_benchmark("crypt").paper
        assert (crypt.nmin, crypt.nmax, crypt.closures) == (9, 237, 861)
        assert crypt.oct_speedup == 146.0

    def test_scales(self):
        b = get_benchmark("firefox")
        small = b.source("small")
        paper = b.source("paper")
        assert small != paper
        with pytest.raises(ValueError):
            b.source("huge")

    @pytest.mark.parametrize("bench", BENCHMARKS, ids=lambda b: b.name)
    def test_all_sources_parse_at_small_scale(self, bench):
        program = parse_program(bench.source("small"))
        assert program.procedures


class TestRunWorkload:
    def test_run_octagon_small(self):
        run = run_workload(get_benchmark("firefox"), "octagon", scale="small")
        assert run.closures > 0
        assert run.total_seconds > 0
        assert run.octagon_seconds <= run.total_seconds
        assert run.nmin <= run.nmax

    def test_aux_passes_add_non_octagon_time(self):
        bench = get_benchmark("firefox")
        bare = run_workload(bench, "octagon", scale="small", aux_passes=0)
        # Enough repetitions that the auxiliary time dominates noise.
        loaded = run_workload(bench, "octagon", scale="small", aux_passes=40)
        assert loaded.pct_octagon < bare.pct_octagon
        assert loaded.total_seconds > loaded.octagon_seconds

    def test_capture_closures(self):
        run = run_workload(get_benchmark("firefox"), "octagon",
                           scale="small", capture_closures=True)
        assert len(run.closure_inputs) == run.closures

    def test_same_closure_counts_across_domains(self):
        """Both implementations execute the same analysis, so they
        perform the same number of full closures."""
        bench = get_benchmark("matmult")
        opt = run_workload(bench, "octagon", scale="small")
        apron = run_workload(bench, "apron", scale="small")
        assert opt.closures == apron.closures
        assert (opt.checks_verified, opt.checks_total) == \
            (apron.checks_verified, apron.checks_total)
