"""Tests for the Pentagon domain extension."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import INF
from repro.core.constraints import LinExpr, OctConstraint
from repro.domains import Pentagon, get_domain


@st.composite
def pentagons(draw, n=3):
    kind = draw(st.integers(0, 6))
    if kind == 0:
        return Pentagon.top(n)
    if kind == 1:
        return Pentagon.bottom(n)
    p = Pentagon.top(n)
    for _ in range(draw(st.integers(1, 6))):
        v = draw(st.integers(0, n - 1))
        w = draw(st.integers(0, n - 1))
        c = float(draw(st.integers(-6, 10)))
        if v == w or draw(st.booleans()):
            expr = (LinExpr({v: 1.0}, -c) if draw(st.booleans())
                    else LinExpr({v: -1.0}, c))
        else:
            expr = LinExpr({v: 1.0, w: -1.0}, 1.0)  # v < w
        p = p.assume_linear(expr)
    return p


SET = settings(max_examples=50, deadline=None)


class TestBasics:
    def test_top_bottom(self):
        assert Pentagon.top(2).is_top()
        assert Pentagon.bottom(2).is_bottom()

    def test_strict_relation_recorded(self):
        p = Pentagon.top(2).assume_linear(LinExpr({0: 1.0, 1: -1.0}, 1.0))
        assert 1 in p.less[0]
        lo, hi = p.bound_linexpr(LinExpr({0: 1.0, 1: -1.0}))
        assert hi == -1.0

    def test_reduction_propagates_bounds(self):
        # x < y with y <= 5 gives x <= 4 (integer semantics).
        p = Pentagon.from_box([(-INF, INF), (-INF, 5.0)])
        p = p.assume_linear(LinExpr({0: 1.0, 1: -1.0}, 1.0))
        assert p.bounds(0)[1] == 4.0

    def test_relational_cycle_is_bottom(self):
        p = Pentagon.top(2)
        p = p.assume_linear(LinExpr({0: 1.0, 1: -1.0}, 1.0))  # x < y
        p = p.assume_linear(LinExpr({1: 1.0, 0: -1.0}, 1.0))  # y < x
        assert p.is_bottom()

    def test_interval_contradiction(self):
        p = Pentagon.from_box([(3.0, 4.0)]).assume_linear(LinExpr({0: 1.0}, 0.0))
        assert p.is_bottom()


class TestLattice:
    @SET
    @given(pentagons(), pentagons())
    def test_join_upper_bound(self, a, b):
        j = a.join(b)
        assert a.is_leq(j) and b.is_leq(j)

    @SET
    @given(pentagons(), pentagons())
    def test_meet_lower_bound(self, a, b):
        m = a.meet(b)
        assert m.is_leq(a) and m.is_leq(b)

    @SET
    @given(pentagons(), pentagons())
    def test_widening_covers_join(self, a, b):
        assert a.join(b).is_leq(a.widening(b))

    @SET
    @given(pentagons())
    def test_eq_reflexive(self, a):
        assert a.is_eq(a.copy())

    def test_join_keeps_common_relation(self):
        a = Pentagon.top(2).assume_linear(LinExpr({0: 1.0, 1: -1.0}, 1.0))
        b = Pentagon.from_box([(0.0, 1.0), (5.0, 9.0)])  # x < y via bounds
        j = a.join(b)
        lo, hi = j.bound_linexpr(LinExpr({0: 1.0, 1: -1.0}))
        assert hi <= -1.0

    def test_join_drops_one_sided_relation(self):
        a = Pentagon.top(2).assume_linear(LinExpr({0: 1.0, 1: -1.0}, 1.0))
        b = Pentagon.top(2)
        j = a.join(b)
        assert 1 not in j.less[0]


class TestTransfer:
    def test_assign_decrement_records_less(self):
        p = Pentagon.top(2).assign_linexpr(0, LinExpr({1: 1.0}, -1.0))
        assert 1 in p.less[0]  # x := y - 1 means x < y

    def test_assign_increment_records_greater(self):
        p = Pentagon.top(2).assign_linexpr(0, LinExpr({1: 1.0}, 2.0))
        assert 0 in p.less[1]  # x := y + 2 means y < x

    def test_forget_drops_relations(self):
        p = Pentagon.top(2).assume_linear(LinExpr({0: 1.0, 1: -1.0}, 1.0))
        assert 1 in p.less[0]
        f = p.forget(1)
        assert 1 not in f.less[0]
        f2 = p.forget(0)
        assert not f2.less[0]

    def test_overwrite_drops_relations(self):
        p = Pentagon.top(2).assume_linear(LinExpr({0: 1.0, 1: -1.0}, 1.0))
        q = p.assign_const(0, 100.0)
        assert 1 not in q.less[0]

    def test_soundness_by_sampling(self):
        rng = np.random.default_rng(31)
        p = Pentagon.from_box([(-3.0, 3.0)] * 3)
        expr = LinExpr({0: 1.0, 2: -1.0}, 1.0)  # x < z
        refined = p.assume_linear(expr)
        for _ in range(40):
            pt = rng.uniform(-3, 3, 3)
            if expr.evaluate(pt) <= 0:
                assert refined.contains_point(pt)


class TestArrayBoundsUseCase:
    """The pentagon's home turf: i < n array-bound checks."""

    def test_analyzer_proves_scan(self):
        from repro.analysis.analyzer import analyze_source
        src = """
        n = [1, 1000];
        i = 0;
        while (i < n) {
          assert(i <= n - 1);
          i = i + 1;
        }
        """
        res = analyze_source(src, domain="pentagon")
        assert res.all_verified

    def test_cheaper_than_octagon_but_less_precise(self):
        from repro.analysis.analyzer import analyze_source
        # Needs x + y <= 3: pentagons have no sum constraints.
        src = "x = [0, 3]; y = 3 - x; assert(x + y <= 3);"
        assert analyze_source(src, domain="octagon").all_verified
        assert not analyze_source(src, domain="pentagon").all_verified
