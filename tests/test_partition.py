"""Tests for independent-component partitions."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from dbm_strategies import block_dbms, coherent_dbms, make_coherent_dbm
from repro.core.densemat import new_top
from repro.core.partition import Partition, UnionFind


class TestUnionFind:
    def test_basic(self):
        uf = UnionFind(5)
        assert uf.find(3) == 3
        uf.union(0, 1)
        uf.union(1, 2)
        assert uf.find(0) == uf.find(2)
        assert uf.find(3) != uf.find(0)


class TestConstruction:
    def test_empty(self):
        p = Partition.empty(4)
        assert p.is_empty()
        assert p.support == set()

    def test_single_block(self):
        p = Partition.single_block(3)
        assert p.canonical() == [[0, 1, 2]]

    def test_add_block_rejects_overlap(self):
        p = Partition(4, [[0, 1]])
        with pytest.raises(ValueError):
            p.add_block([1, 2])

    def test_add_block_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            Partition(2, [[0, 5]])


class TestExtraction:
    def test_from_matrix_example(self):
        # The paper's Figure 3: u,x and x,z related; y unconstrained;
        # v has a unary bound.  Components: {u, x, z} and {v}.
        n = 5
        u, v, x, y, z = range(5)
        m = new_top(n)
        entries = []
        m[2 * u, 2 * x] = 2.0  # x - u <= 2
        m[2 * x ^ 1, 2 * u ^ 1] = 2.0
        m[2 * x, 2 * z] = 1.0
        m[2 * z ^ 1, 2 * x ^ 1] = 1.0
        m[2 * v + 1, 2 * v] = 4.0  # v <= 2 (unary)
        p = Partition.from_matrix(m)
        assert p.canonical() == [[0, 2, 4], [1]]

    def test_diagonal_is_trivial(self):
        p = Partition.from_matrix(new_top(3))
        assert p.is_empty()

    @given(block_dbms())
    def test_extraction_respects_generator_blocks(self, data):
        m, blocks = data
        exact = Partition.from_matrix(m)
        declared = Partition(m.shape[0] // 2, blocks)
        assert declared.overapproximates(exact)


class TestOperators:
    def test_union_merges_overlapping(self):
        a = Partition(5, [[0, 1], [3]])
        b = Partition(5, [[1, 2]])
        u = a.union(b)
        assert u.canonical() == [[0, 1, 2], [3]]

    def test_intersection_blockwise(self):
        a = Partition(5, [[0, 1, 2], [3, 4]])
        b = Partition(5, [[0, 1], [2, 3, 4]])
        i = a.intersection(b)
        assert i.canonical() == [[0, 1], [2], [3, 4]]

    def test_intersection_restricts_support(self):
        a = Partition(4, [[0, 1, 2]])
        b = Partition(4, [[1, 2, 3]])
        assert a.intersection(b).support == {1, 2}

    def test_merge_blocks_containing(self):
        p = Partition(6, [[0, 1], [2, 3], [4]])
        merged = p.merge_blocks_containing([1, 2, 5])
        assert merged.canonical() == [[0, 1, 2, 3, 5], [4]]

    def test_remove_var(self):
        p = Partition(4, [[0, 1, 2]])
        q = p.remove_var(1)
        assert q.canonical() == [[0, 2]]
        assert p.canonical() == [[0, 1, 2]]  # original untouched
        assert p.remove_var(3).canonical() == p.canonical()

    def test_remove_last_var_drops_block(self):
        p = Partition(3, [[1]])
        assert p.remove_var(1).is_empty()


class TestLaws:
    @given(block_dbms(), block_dbms())
    def test_union_is_coarser_intersection_finer(self, da, db):
        ma, _ = da
        mb, _ = db
        n = min(ma.shape[0], mb.shape[0]) // 2
        a = Partition.from_matrix(ma[: 2 * n, : 2 * n])
        b = Partition.from_matrix(mb[: 2 * n, : 2 * n])
        u = a.union(b)
        i = a.intersection(b)
        assert u.overapproximates(a) and u.overapproximates(b)
        assert a.overapproximates(i) and b.overapproximates(i)

    @given(block_dbms())
    def test_union_intersection_idempotent(self, data):
        m, _ = data
        p = Partition.from_matrix(m)
        assert p.union(p) == p
        assert p.intersection(p) == p

    def test_equality_and_repr(self):
        p = Partition(3, [[0, 2]])
        q = Partition(3, [[2, 0]])
        assert p == q
        assert "blocks" in repr(p)
        with pytest.raises(TypeError):
            hash(p)
