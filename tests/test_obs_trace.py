"""Tests for the span tracer and Chrome trace-event export."""

import json

import pytest

from repro.analysis.analyzer import Analyzer
from repro.obs import trace
from repro.service.job import AnalysisJob
from repro.service.scheduler import run_batch

SOURCE = """\
proc main {
  x = 0;
  while (x < 8) { x = x + 1; }
  assert(x == 8);
}
"""


@pytest.fixture(autouse=True)
def clean_tracer():
    trace.disable()
    trace.reset()
    yield
    trace.disable()
    trace.reset()


class TestSpans:
    def test_disabled_span_is_shared_noop(self):
        s = trace.span("anything", k=1)
        assert s is trace.NULL_SPAN
        with s as live:
            live.set(more=2)  # must not raise
        assert trace.events() == []

    def test_enabled_span_records_complete_event(self):
        trace.enable()
        with trace.span("work", kind="test") as s:
            s.set(extra=7)
        (event,) = trace.events()
        assert event["ph"] == "X"
        assert event["name"] == "work"
        assert event["args"] == {"kind": "test", "extra": 7}
        assert event["dur"] >= 0.0

    def test_span_name_attr_does_not_collide(self):
        """`name` is positional-only, so spans can carry a name attr."""
        trace.enable()
        with trace.span("procedure", name="main"):
            pass
        (event,) = trace.events()
        assert event["args"]["name"] == "main"

    def test_exception_annotates_and_propagates(self):
        trace.enable()
        with pytest.raises(KeyError):
            with trace.span("boom"):
                raise KeyError("x")
        (event,) = trace.events()
        assert event["args"]["error"] == "KeyError"

    def test_emit_uses_explicit_endpoints(self):
        trace.enable()
        trace.emit("closure", 1.0, 1.5, args={"n": 4})
        (event,) = trace.events()
        assert event["ts"] == pytest.approx(1.0e6)
        assert event["dur"] == pytest.approx(0.5e6)

    def test_emit_disabled_is_silent(self):
        trace.emit("closure", 0.0, 1.0)
        assert trace.events() == []


class TestSession:
    def test_session_isolates_and_restores(self):
        trace.enable()
        trace.emit("before", 0.0, 1.0)
        with trace.session() as sess:
            trace.emit("inside", 0.0, 1.0)
        trace.emit("after", 0.0, 1.0)
        assert [e["name"] for e in sess.events] == ["inside"]
        assert [e["name"] for e in trace.events()] == ["before", "after"]

    def test_session_forces_enabled_then_restores(self):
        assert not trace.enabled()
        with trace.session() as sess:
            assert trace.enabled()
            trace.emit("only", 0.0, 1.0)
        assert not trace.enabled()
        assert len(sess.events) == 1


class TestAdoption:
    def test_adopt_rewrites_onto_lane(self):
        trace.enable()
        lane = trace.new_lane("job j1")
        worker = [
            {"name": "thread_name", "ph": "M", "pid": 999, "tid": 1,
             "args": {"name": "w"}},
            {"name": "fixpoint", "ph": "X", "ts": 1.0, "dur": 2.0,
             "pid": 999, "tid": 1, "args": {"nodes": 3}},
        ]
        adopted = trace.adopt(worker, lane)
        assert adopted == 1  # metadata dropped
        spans = [e for e in trace.events() if e.get("ph") == "X"]
        (event,) = spans
        assert event["tid"] == lane
        assert event["pid"] != 999
        assert event["args"]["worker_pid"] == 999
        names = [e["args"]["name"] for e in trace.events()
                 if e.get("ph") == "M"]
        assert "job j1" in names


class TestExport:
    def test_export_load_validate_roundtrip(self, tmp_path):
        trace.enable()
        with trace.span("outer"):
            with trace.span("inner"):
                pass
        path = tmp_path / "trace.json"
        written = trace.export(str(path))
        assert written == 2
        document = json.loads(path.read_text())
        assert trace.validate_chrome_trace(document) == 2
        loaded = trace.load(str(path))
        assert {"outer", "inner"} <= {e["name"] for e in loaded}

    def test_validate_rejects_malformed(self):
        with pytest.raises(ValueError):
            trace.validate_chrome_trace({"nope": []})
        with pytest.raises(ValueError):
            trace.validate_chrome_trace([{"name": "x", "ph": "X"}])  # no ts
        with pytest.raises(ValueError):
            trace.validate_chrome_trace([{"ph": "X", "ts": 0, "dur": 1,
                                          "pid": 1, "tid": 1}])  # no name


class TestAnalysisSpans:
    def test_analysis_emits_phase_spans(self):
        trace.enable()
        Analyzer().analyze(SOURCE)
        names = {e["name"] for e in trace.events()}
        for expected in ("parse", "procedure", "rung", "fixpoint",
                         "compile", "loop", "recompute"):
            assert expected in names, expected

    def test_closure_spans_from_kernels(self):
        trace.enable()
        Analyzer().analyze(SOURCE)
        closures = [e for e in trace.events()
                    if e["name"] in ("closure", "closure_inc")]
        assert closures
        assert all("n" in e["args"] for e in closures)

    def test_disabled_analysis_records_nothing(self):
        Analyzer().analyze(SOURCE)
        assert trace.events() == []


class TestBatchReparenting:
    @pytest.mark.parametrize("workers", [1, 2])
    def test_worker_spans_nest_under_job_lanes(self, workers):
        trace.enable()
        jobs = [AnalysisJob(source=SOURCE, label="a"),
                AnalysisJob(source="x = 1; assert(x == 1);", label="b")]
        batch = run_batch(jobs, workers=workers)
        assert batch.all_ok
        events = trace.events()
        job_spans = [e for e in events
                     if e.get("ph") == "X" and e["name"] == "job"]
        assert len(job_spans) == 2
        lanes = {e["tid"] for e in job_spans}
        assert all(lane >= 1000 for lane in lanes)
        # Worker-side spans were re-parented onto the job lanes.
        nested = [e for e in events if e.get("ph") == "X"
                  and e["name"] == "fixpoint" and e["tid"] in lanes]
        assert len(nested) == 2
        assert all("worker_pid" in e["args"] for e in nested)
        # Every job lane got a readable label.
        labels = {e["args"]["name"] for e in events
                  if e.get("ph") == "M" and e["name"] == "thread_name"}
        assert {"job a", "job b"} <= labels
        # The job span covers its nested spans on the same lane (the
        # parent stamps the job start just after submission, so allow a
        # small scheduling skew -- timestamps are microseconds).
        skew = 50_000.0
        for job in job_spans:
            inside = [e for e in events
                      if e.get("ph") == "X" and e["tid"] == job["tid"]
                      and e is not job]
            assert inside
            for e in inside:
                assert e["ts"] >= job["ts"] - skew
                assert e["ts"] + e["dur"] <= job["ts"] + job["dur"] + skew

    def test_batch_without_tracing_ships_no_events(self):
        jobs = [AnalysisJob(source="x = 1; assert(x == 1);", label="a")]
        batch = run_batch(jobs, workers=1)
        assert batch.results[0].trace_events == []
        assert trace.events() == []
