"""Tests for the Zone (DBM) domain extension."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import INF
from repro.core.constraints import LinExpr, OctConstraint
from repro.domains import Zone, get_domain


@st.composite
def zones(draw, n=3):
    kind = draw(st.integers(0, 6))
    if kind == 0:
        return Zone.top(n)
    if kind == 1:
        return Zone.bottom(n)
    zone = Zone.top(n)
    for _ in range(draw(st.integers(1, 8))):
        v = draw(st.integers(0, n - 1))
        w = draw(st.integers(0, n - 1))
        c = float(draw(st.integers(-6, 12)))
        if v == w:
            lo = draw(st.booleans())
            expr = LinExpr({v: -1.0}, c) if lo else LinExpr({v: 1.0}, -c)
        else:
            expr = LinExpr({v: 1.0, w: -1.0}, -c)  # v - w <= c
        zone = zone.assume_linear(expr)
    return zone


SET = settings(max_examples=50, deadline=None)


class TestBasics:
    def test_top_bottom(self):
        assert Zone.top(3).is_top()
        assert Zone.bottom(3).is_bottom()
        assert Zone.top(0).is_top()

    def test_from_box(self):
        z = Zone.from_box([(0.0, 2.0), (-INF, 5.0)])
        assert z.bounds(0) == (0.0, 2.0)
        assert z.bounds(1) == (-INF, 5.0)

    def test_difference_constraint_exact(self):
        z = Zone.top(2).assume_linear(LinExpr({0: 1.0, 1: -1.0}, -3.0))
        lo, hi = z.bound_linexpr(LinExpr({0: 1.0, 1: -1.0}))
        assert hi == 3.0

    def test_closure_derives_transitive(self):
        z = Zone.top(3)
        z = z.assume_linear(LinExpr({0: 1.0, 1: -1.0}, -1.0))  # x - y <= 1
        z = z.assume_linear(LinExpr({1: 1.0, 2: -1.0}, -2.0))  # y - z <= 2
        lo, hi = z.bound_linexpr(LinExpr({0: 1.0, 2: -1.0}))
        assert hi == 3.0

    def test_contradiction(self):
        z = Zone.top(1)
        z = z.assume_linear(LinExpr({0: 1.0}, 0.0))   # x <= 0
        z = z.assume_linear(LinExpr({0: -1.0}, 1.0))  # x >= 1
        assert z.is_bottom()

    def test_closure_preserves_original(self):
        z = Zone.top(2).assume_linear(LinExpr({0: 1.0, 1: -1.0}, -1.0))
        z.closed = False
        before = z.mat.copy()
        c = z.closure()
        assert np.array_equal(np.isinf(z.mat), np.isinf(before))
        assert c.closed


class TestLattice:
    @SET
    @given(zones(), zones())
    def test_join_upper_bound(self, a, b):
        j = a.join(b)
        assert a.is_leq(j) and b.is_leq(j)

    @SET
    @given(zones(), zones())
    def test_meet_lower_bound(self, a, b):
        m = a.meet(b)
        assert m.is_leq(a) and m.is_leq(b)

    @SET
    @given(zones(), zones())
    def test_widening_covers_join(self, a, b):
        assert a.join(b).is_leq(a.widening(b))

    @SET
    @given(zones())
    def test_eq_reflexive(self, a):
        assert a.is_eq(a.copy())

    def test_widening_terminates(self):
        state = Zone.from_box([(0.0, 0.0)])
        for k in range(1, 100):
            nxt = Zone.from_box([(0.0, float(k))])
            merged = state.join(nxt)
            if merged.is_leq(state):
                break
            state = state.widening(merged)
            if state.bounds(0)[1] == INF:
                break
        assert state.bounds(0)[1] == INF


class TestDecomposition:
    def test_components_tracked(self):
        z = Zone.top(6)
        z = z.assume_linear(LinExpr({0: 1.0, 1: -1.0}, -1.0))
        z = z.assume_linear(LinExpr({3: 1.0, 4: -1.0}, -1.0))
        c = z.closure()
        assert c.partition.canonical() == [[0, 1], [3, 4]]

    def test_decomposed_closure_matches_dense(self):
        rng = np.random.default_rng(4)
        for _ in range(20):
            n = int(rng.integers(2, 8))
            z1 = Zone.top(n)
            z2 = Zone.top(n)
            z2.decompose = False
            for _ in range(int(rng.integers(1, 8))):
                v, w = (int(x) for x in rng.integers(0, n, 2))
                c = float(rng.integers(-4, 10))
                expr = (LinExpr({v: 1.0}, -c) if v == w
                        else LinExpr({v: 1.0, w: -1.0}, -c))
                z1 = z1.assume_linear(expr)
                z2 = z2.assume_linear(expr)
                z2.decompose = False
            if z1.is_bottom() or z2.is_bottom():
                assert z1.is_bottom() == z2.is_bottom()
                continue
            a, b = z1.closure().mat, z2.closure().mat
            assert np.allclose(np.where(np.isinf(a), 1e300, a),
                               np.where(np.isinf(b), 1e300, b))


class TestTransfer:
    def test_assign_var_relational(self):
        z = Zone.from_box([(0.0, 5.0), (0.0, 0.0)]).assign_var(1, 0, offset=2.0)
        lo, hi = z.bound_linexpr(LinExpr({1: 1.0, 0: -1.0}))
        assert (lo, hi) == (2.0, 2.0)
        assert z.bounds(1) == (2.0, 7.0)

    def test_translate_exact(self):
        z = Zone.from_box([(1.0, 2.0)]).assign_var(0, 0, offset=3.0)
        assert z.bounds(0) == (4.0, 5.0)

    def test_negation_falls_back_to_intervals(self):
        z = Zone.from_box([(1.0, 2.0), (0.0, 0.0)]).assign_var(1, 0, coeff=-1)
        assert z.bounds(1) == (-2.0, -1.0)

    def test_forget(self):
        z = Zone.from_box([(1.0, 2.0), (3.0, 4.0)]).forget(0)
        assert z.bounds(0) == (-INF, INF)
        assert z.bounds(1) == (3.0, 4.0)

    def test_assign_linexpr_relational(self):
        z = Zone.from_box([(0.0, 1.0), (0.0, 2.0), (0.0, 0.0)])
        z = z.assign_linexpr(2, LinExpr({0: 1.0, 1: 1.0}, 1.0))
        assert z.bounds(2) == (1.0, 4.0)
        lo, hi = z.bound_linexpr(LinExpr({2: 1.0, 0: -1.0}))
        assert (lo, hi) == (1.0, 3.0)

    def test_soundness_by_sampling(self):
        rng = np.random.default_rng(9)
        z = Zone.from_box([(-3.0, 3.0)] * 3)
        expr = LinExpr({0: 1.0, 1: -1.0}, -1.0)
        refined = z.assume_linear(expr)
        for _ in range(40):
            pt = rng.uniform(-3, 3, 3)
            if expr.evaluate(pt) <= 0:
                assert refined.contains_point(pt)


class TestAnalyzerIntegration:
    def test_zone_analysis_runs(self):
        from repro.analysis.analyzer import analyze_source
        res = analyze_source(
            "i = 0; n = [5, 10]; while (i < n) { i = i + 1; } assert(i >= 5);",
            domain="zone")
        assert res.all_verified

    def test_zone_proves_difference_invariant(self):
        from repro.analysis.analyzer import analyze_source
        # Exit ranges overlap (y in [0,15], x in [0,10]) so intervals
        # cannot conclude y >= x; the zone's x - y <= 0 survives.
        src = """
        x = [0, 10]; y = x; k = [0, 5]; i = 0;
        while (i < k) { y = y + 1; i = i + 1; }
        assert(y >= x);
        """
        assert analyze_source(src, domain="zone").all_verified
        assert not analyze_source(src, domain="interval").all_verified

    def test_octagon_at_least_as_precise_on_boxes(self):
        from repro.analysis.analyzer import analyze_source
        src = "a = [0, 4]; b = a + 1; c = b - a;"
        zb = analyze_source(src, domain="zone").procedures[0].box_at_exit()
        ob = analyze_source(src, domain="octagon").procedures[0].box_at_exit()
        for (zl, zh), (ol, oh) in zip(zb, ob):
            assert ol >= zl - 1e-9 and oh <= zh + 1e-9
