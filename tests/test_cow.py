"""The hot-path memory layer: copy-on-write DBM storage, reusable
kernel workspaces and the versioned closed-form cache.

The layer must be *observationally pure*: every test here pins down a
way sharing could leak (a write through an alias, stale scratch from a
previous closure, a cached closed form surviving a mutation, widening
peeking at a materialised closure) and asserts it does not.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from dbm_strategies import coherent_dbms, octagon_mutations, octagons
from repro.core import Octagon, OctConstraint
from repro.core import cow, stats, workspace
from repro.core.closure_dense import closure_dense_numpy
from repro.core.cow import CowMat
from repro.core.densemat import new_top


class TestCowMat:
    def test_clone_aliases_until_write(self):
        a = CowMat(new_top(2))
        b = a.clone()
        assert b.arr is a.arr
        assert a.shared and b.shared
        written = b.written()
        assert written is b.arr and written is not a.arr
        assert not a.shared and not b.shared
        assert b.version == a.version + 1

    def test_sole_owner_writes_in_place(self):
        a = CowMat(new_top(2))
        arr = a.arr
        assert a.written() is arr  # no copy when unshared

    def test_del_releases_ownership(self):
        a = CowMat(new_top(2))
        b = a.clone()
        assert a.shared
        del b
        assert not a.shared
        assert a.written() is a.arr

    def test_disabled_mode_copies_eagerly(self):
        a = CowMat(new_top(2))
        with cow.disabled():
            b = a.clone()
        assert b.arr is not a.arr
        assert not a.shared

    def test_counters_report_the_savings(self):
        with stats.collecting() as collector:
            a = CowMat(new_top(2))
            b = a.clone()
            c = a.clone()
            b.written()  # one materialisation
            del c  # dropped unwritten: a copy avoided
        summary = collector.counter_summary()
        assert summary["cow_clones"] == 2
        assert summary["cow_materializations"] == 1
        assert summary["copies_avoided"] == 1


class TestCowIsolation:
    @settings(max_examples=60, deadline=None)
    @given(o=octagons(), data=st.data())
    def test_mutating_a_copy_never_changes_the_original(self, o, data):
        snapshot = o.mat.copy()
        c = o.copy()
        name, args = data.draw(octagon_mutations(o.n))
        getattr(c, name)(*args)
        assert np.array_equal(o.mat, snapshot)

    @settings(max_examples=60, deadline=None)
    @given(o=octagons(), data=st.data())
    def test_mutating_the_original_never_changes_a_copy(self, o, data):
        c = o.copy()
        snapshot = c.mat.copy()
        name, args = data.draw(octagon_mutations(o.n))
        getattr(o, name)(*args)
        assert np.array_equal(c.mat, snapshot)

    @settings(max_examples=30, deadline=None)
    @given(o=octagons(), data=st.data())
    def test_alias_chains_stay_isolated(self, o, data):
        aliases = [o.copy() for _ in range(3)]
        snapshots = [a.mat.copy() for a in aliases]
        name, args = data.draw(octagon_mutations(o.n))
        victim = data.draw(st.integers(0, 2))
        getattr(aliases[victim], name)(*args)
        for i, (alias, snap) in enumerate(zip(aliases, snapshots)):
            if i != victim:
                assert np.array_equal(alias.mat, snap)


class TestWorkspaceReuse:
    @settings(max_examples=40, deadline=None)
    @given(a=coherent_dbms(min_n=3, max_n=3), b=coherent_dbms(min_n=3, max_n=3))
    def test_no_state_leak_between_closures_at_same_dim(self, a, b):
        # Reference result with per-call buffers (no sharing possible).
        ref = b.copy()
        with workspace.disabled():
            ref_bottom = closure_dense_numpy(ref)
        # Poison the shared workspace with an unrelated closure at the
        # same dimension, then close ``b`` through it.
        workspace.clear()
        first = a.copy()
        closure_dense_numpy(first)
        out = b.copy()
        out_bottom = closure_dense_numpy(out)
        assert out_bottom == ref_bottom
        if not ref_bottom:
            assert np.array_equal(out, ref)

    @settings(max_examples=25, deadline=None)
    @given(o1=octagons(min_n=2, max_n=4), o2=octagons(min_n=2, max_n=4))
    def test_interleaved_analyses_match_fresh_buffer_reference(self, o1, o2):
        def observe(o):
            closed = o.closure()
            return [closed.bounds(v) for v in range(o.n)]

        with workspace.disabled(), cow.disabled():
            ref1, ref2 = observe(o1.copy()), observe(o2.copy())
        workspace.clear()
        assert observe(o1.copy()) == ref1
        assert observe(o2.copy()) == ref2
        # Again, now with buffers warmed by each other's workload.
        assert observe(o1.copy()) == ref1
        assert observe(o2.copy()) == ref2


class TestWorkspaceThreadIsolation:
    def test_each_thread_gets_its_own_scratch(self):
        # The analysis server closes matrices on concurrent threads; a
        # scratch matrix shared across threads races (two ufuncs with
        # the same ``out=``) and corrupts both closures.
        import threading

        buffers = {}

        def grab(slot):
            buffers[slot] = workspace.get_workspace(6).scratch

        threads = [threading.Thread(target=grab, args=(i,)) for i in range(3)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        grab(3)  # main thread too
        ids = {id(buf) for buf in buffers.values()}
        assert len(ids) == 4, "scratch buffers shared across threads"

    def test_same_thread_still_reuses(self):
        workspace.clear()
        with stats.collecting() as collector:
            first = workspace.get_workspace(8).scratch
            second = workspace.get_workspace(8).scratch
        assert first is second
        assert collector.counter_summary().get("workspace_hits", 0) >= 1


class TestClosureCache:
    def test_alias_closure_runs_no_kernel(self):
        o = Octagon.from_constraints(
            3, [OctConstraint.diff(0, 1, 1.0), OctConstraint.upper(1, 4.0)])
        with stats.collecting() as collector:
            closed = o.closure()
            kernel_runs = len(collector.closures)
            assert kernel_runs >= 1
            alias = o.copy()
            again = alias.closure()
            assert again is closed
            assert len(collector.closures) == kernel_runs  # cache hit, no kernel
            assert collector.counter_summary()["closure_cache_hits"] >= 1

    def test_write_invalidates_only_the_writer(self):
        o = Octagon.from_constraints(2, [OctConstraint.diff(0, 1, 2.0)])
        closed = o.closure()
        alias = o.copy()
        alias._meet_constraint_cells(OctConstraint.upper(0, 1.0))
        assert alias._cached_closure() is None
        assert o._cached_closure() is closed
        assert alias.closure().bounds(0)[1] <= 1.0
        assert o.closure() is closed

    def test_widening_observes_the_unclosed_left_argument(self):
        # x - y <= 0 and y <= 5 imply x <= 5, but only through closure;
        # the *stored* unary row of x is infinite.  Widening must keep
        # reading the unclosed matrix even after closure() has cached a
        # materialised closed form, or widened-away bounds come back and
        # termination is lost.
        cons = [OctConstraint.diff(0, 1, 0.0), OctConstraint.upper(1, 5.0)]
        grown = cons + [OctConstraint.upper(0, 4.0)]
        fresh = Octagon.from_constraints(2, cons)
        primed = Octagon.from_constraints(2, cons)
        primed.closure()  # fills the cache; must not leak into widening
        other = Octagon.from_constraints(2, grown)
        w_fresh = fresh.widening(other)
        w_primed = primed.widening(other)
        assert np.array_equal(w_fresh.mat, w_primed.mat)

    @settings(max_examples=40, deadline=None)
    @given(o=octagons(min_n=1, max_n=4))
    def test_alias_closure_matches_direct_closure(self, o):
        direct = o.copy().closure()
        o.closure()
        via_cache = o.copy().closure()
        assert direct.is_bottom() == via_cache.is_bottom()
        if not direct.is_bottom():
            assert np.array_equal(direct.mat, via_cache.mat)
