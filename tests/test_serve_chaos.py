"""Chaos tests for the supervised analysis server.

These drive the serve fault points (``serve_worker_kill``,
``serve_worker_hang``, ``serve_conn_reset``) plus real signals against
the daemon, and assert the robustness contract of the supervisor PR:

* with faults armed, every affected request still completes -- with the
  *correct* result (retry after respawn) or a structurally *degraded*
  one (deadline exceeded), never a hang or a crash of the daemon;
* verdicts after recovery are identical to a clean run;
* every recovery path leaves ``/dev/shm`` empty and the worker pool
  healthy (respawn counters pin that the fault actually fired);
* overload sheds structured ``overloaded`` responses and client
  retries converge;
* SIGTERM is a graceful drain: in-flight work completes, then the
  socket file and shm are swept;
* two daemons racing onto one socket path resolve to exactly one.
"""

import os
import signal
import socket as socketlib
import subprocess
import sys
import threading
import time

import pytest

from repro.obs import events
from repro.serve import AnalysisServer, ServeClient, ServeError, wait_ready
from repro.serve.supervisor import WorkerSupervisor
from repro.service.job import AnalysisJob, execute_job
from repro.testing import faults

TWO_PROCS = """\
proc f {
  x = [0, 4];
  y = x + 1;
  assert(y <= 5);
}
proc g {
  i = 0;
  while (i < 9) { i = i + 1; }
  assert(i >= 9);
}
"""


def _slow_source(nvars: int = 130, loops: int = 200) -> str:
    """One wide procedure: a fixpoint that takes a visible fraction of
    a second (octagon closure is cubic in the variable count)."""
    decls = "; ".join(f"v{k} = [0, {k + 1}]" for k in range(nvars))
    bumps = " ".join(f"v{k} = v{k} + 1;" for k in range(nvars))
    return (f"proc p0 {{ {decls}; i = 0;"
            f" while (i < {loops}) {{ i = i + 1; {bumps} }}"
            f" assert (i >= {loops}); }}")


def _shm_entries():
    if not os.path.isdir("/dev/shm"):
        return []
    return [e for e in os.listdir("/dev/shm") if e.startswith("repro_shm")]


def _verdicts(checks):
    """Normalize CheckVerdict dataclasses / serialized triples alike."""
    out = []
    for check in checks:
        if isinstance(check, (list, tuple)):
            proc, cond, ok = check
        else:
            proc, cond, ok = check.procedure, check.cond_text, check.verified
        out.append((proc, cond, bool(ok)))
    return sorted(out)


def _baseline_verdicts(source):
    return _verdicts(execute_job(AnalysisJob(source=source)).checks)


@pytest.fixture(autouse=True)
def disarm_faults():
    yield
    faults.clear()


# ----------------------------------------------------------------------
# supervisor unit level
# ----------------------------------------------------------------------
class TestSupervisor:
    def _sup(self, **kw):
        kw.setdefault("backoff_base", 0.01)
        kw.setdefault("backoff_cap", 0.05)
        sup = WorkerSupervisor(kw.pop("pool", 1), **kw)
        sup.start()
        return sup

    def test_kill_recovery_counts_and_verdicts(self):
        sup = self._sup(pool=2)
        try:
            job = AnalysisJob(source=TWO_PROCS, label="kill-me")
            faults.inject("serve_worker_kill")
            result, external = sup.execute(job)
            assert external
            assert _verdicts(result.checks) == _baseline_verdicts(TWO_PROCS)
            counters = sup.counter_summary()
            assert counters["worker_crashes"] >= 1
            deadline = time.monotonic() + 10
            while (sup.counter_summary()["worker_restarts"] < 1
                   and time.monotonic() < deadline):
                time.sleep(0.05)
            assert sup.counter_summary()["worker_restarts"] >= 1
        finally:
            sup.shutdown()
        assert _shm_entries() == []

    def test_hang_with_deadline_degrades(self):
        sup = self._sup(pool=1, deadline_grace=0.2)
        try:
            faults.inject("serve_worker_hang")
            result, external = sup.execute(
                AnalysisJob(source=TWO_PROCS),
                deadline=time.monotonic() + 0.4)
            # The wedged worker is killed at deadline + grace and the
            # submitter synthesizes an answer from the sliver of budget
            # left -- structurally degraded, never a hang.
            assert result.outcome in ("ok", "degraded")
            assert sup.counter_summary()["worker_hangs"] >= 1
            # The pool is healthy again afterwards.
            result2, _ = sup.execute(AnalysisJob(source=TWO_PROCS))
            assert _verdicts(result2.checks) == _baseline_verdicts(TWO_PROCS)
        finally:
            sup.shutdown()
        assert _shm_entries() == []

    def test_hang_without_deadline_reaped_by_heartbeat(self):
        sup = self._sup(pool=1, heartbeat_interval=0.1,
                        heartbeat_timeout=0.8)
        try:
            faults.inject("serve_worker_hang")
            result, external = sup.execute(AnalysisJob(source=TWO_PROCS))
            # Heartbeat staleness kills the wedge; the retry computes
            # the real answer on the respawned worker.
            assert external
            assert _verdicts(result.checks) == _baseline_verdicts(TWO_PROCS)
            assert sup.counter_summary()["worker_hangs"] >= 1
        finally:
            sup.shutdown()
        assert _shm_entries() == []

    def test_lifecycle_events_carry_worker_identity(self):
        """Respawn/kill/retry diagnostics name the worker they concern:
        an operator reading the event log can follow one slot's story."""
        sup = self._sup(pool=1)
        try:
            with events.capture() as captured:
                faults.inject("serve_worker_kill")
                result, external = sup.execute(
                    AnalysisJob(source=TWO_PROCS, label="traced-kill"))
                assert external
                deadline = time.monotonic() + 10
                while (sup.counter_summary()["worker_restarts"] < 1
                       and time.monotonic() < deadline):
                    time.sleep(0.05)
            by_name = {}
            for event in captured:
                by_name.setdefault(event.name, []).append(event.fields)
            died = by_name["serve_worker_died"][0]
            assert died["slot"] == 0 and isinstance(died["pid"], int)
            assert died["label"] == "traced-kill"
            retry = by_name["serve_job_retry"][0]
            assert retry["cause"] == "worker-died"
            assert retry["label"] == "traced-kill"
            assert retry["worker_pid"] == died["pid"]
            respawned = by_name["serve_worker_respawned"][0]
            assert respawned["slot"] == 0
            assert respawned["pid"] != died["pid"]
        finally:
            sup.shutdown()

    def test_breaker_emits_open_and_close_events(self):
        sup = self._sup(pool=1, retries=0, breaker_threshold=1,
                        breaker_cooldown=0.2)
        try:
            with events.capture() as captured:
                faults.inject("serve_worker_kill")
                # The crash trips the threshold-1 breaker mid-job; the
                # submitter falls back inline and still answers.
                result, external = sup.execute(
                    AnalysisJob(source=TWO_PROCS))
                assert not external
                assert result.outcome == "ok"
                assert sup.breaker_open()
                time.sleep(0.3)
                # The first read after cooldown expiry logs the close.
                assert not sup.breaker_open()
            names = [event.name for event in captured]
            assert "serve_breaker_open" in names
            assert "serve_breaker_closed" in names
            assert names.index("serve_breaker_open") < names.index(
                "serve_breaker_closed")
        finally:
            sup.shutdown()

    def test_breaker_opens_and_falls_back_inline(self):
        sup = self._sup(pool=1, retries=0, breaker_threshold=2,
                        breaker_cooldown=60.0)
        try:
            job = AnalysisJob(source=TWO_PROCS)
            faults.inject("serve_worker_kill")
            with pytest.raises(Exception):
                sup.execute(job)  # first crash: no retries, job fails
            faults.inject("serve_worker_kill")
            result, external = sup.execute(job)
            # Second consecutive crash trips the breaker mid-job; the
            # submitter falls back to in-process execution and the
            # caller still gets the correct answer.
            assert not external
            assert _verdicts(result.checks) == _baseline_verdicts(TWO_PROCS)
            assert sup.breaker_open()
            counters = sup.counter_summary()
            assert counters["serve_breaker_opens"] == 1
            assert counters["serve_pool_inline"] >= 1
            # While the breaker is open every job runs inline.
            result2, external2 = sup.execute(job)
            assert not external2
            assert result2.outcome == "ok"
        finally:
            sup.shutdown()
        assert _shm_entries() == []


# ----------------------------------------------------------------------
# server level, in-process
# ----------------------------------------------------------------------
@pytest.fixture
def pool_server(tmp_path):
    srv = AnalysisServer(str(tmp_path / "serve.sock"), workers=2, pool=2,
                         use_cache=False)
    srv.start()
    thread = threading.Thread(target=srv.serve_forever, daemon=True)
    thread.start()
    yield srv
    srv.stop()
    thread.join(timeout=30)
    assert not thread.is_alive()
    assert _shm_entries() == []


class TestServeWorkerChaos:
    def test_worker_kill_recovers_with_identical_verdicts(self, pool_server):
        faults.inject("serve_worker_kill")
        with ServeClient(pool_server.socket_path) as client:
            response = client.analyze(TWO_PROCS, label="victim")
            assert response["ok"]
            assert response["result"]["outcome"] == "ok"
            assert (_verdicts(response["result"]["checks"])
                    == _baseline_verdicts(TWO_PROCS))
            counters = client.stats()["counters"]
            assert counters["worker_crashes"] >= 1
            # The daemon is untouched: same pid still answering.
            assert client.ping()["pong"]

    def test_hang_past_deadline_returns_degraded_taxonomy(self, pool_server):
        faults.inject("serve_worker_hang")
        with ServeClient(pool_server.socket_path, timeout=120) as client:
            response = client.analyze(TWO_PROCS, deadline_ms=600)
            # Deadline exceeded is an *answer* (the degradation
            # taxonomy), not an error or a hang.
            assert response["ok"]
            assert response["result"]["outcome"] in ("ok", "degraded")
            counters = client.stats()["counters"]
            assert counters["worker_hangs"] >= 1
            # A clean resubmit recomputes and converges on the truth.
            clean = client.analyze(TWO_PROCS)
            assert clean["result"]["outcome"] == "ok"
            assert (_verdicts(clean["result"]["checks"])
                    == _baseline_verdicts(TWO_PROCS))

    def test_warm_resubmit_stays_zero_fixpoint_with_pool(self, pool_server):
        with ServeClient(pool_server.socket_path) as client:
            cold = client.analyze(TWO_PROCS)
            assert cold["tiers"]["computed"] == 2
            assert cold["result"]["counters"]["fixpoint_runs"] >= 2
            warm = client.analyze(TWO_PROCS)
            # The memory LRU serves the resubmit without touching the
            # pool: zero fixpoints, zero compiled plans.
            assert warm["tiers"] == {"memory": 2, "disk": 0, "computed": 0}
            assert warm["result"]["counters"]["fixpoint_runs"] == 0
            assert warm["result"]["counters"]["plans_compiled"] == 0


class TestServeConnChaos:
    def _server(self, tmp_path, **kw):
        srv = AnalysisServer(str(tmp_path / "serve.sock"), use_cache=False,
                             **kw)
        srv.start()
        thread = threading.Thread(target=srv.serve_forever, daemon=True)
        thread.start()
        return srv, thread

    def _teardown(self, srv, thread):
        srv.stop()
        thread.join(timeout=30)
        assert not thread.is_alive()
        assert _shm_entries() == []

    def test_conn_reset_client_retry_converges(self, tmp_path):
        srv, thread = self._server(tmp_path)
        try:
            faults.inject("serve_conn_reset")
            with ServeClient(srv.socket_path, retries=2) as client:
                # The server drops the connection after computing the
                # response; the client reconnects and the retry is
                # served from the memory LRU.
                response = client.analyze(TWO_PROCS)
                assert response["ok"]
                assert (_verdicts(response["result"]["checks"])
                        == _baseline_verdicts(TWO_PROCS))
        finally:
            self._teardown(srv, thread)

    def test_conn_reset_without_retries_surfaces(self, tmp_path):
        srv, thread = self._server(tmp_path)
        try:
            faults.inject("serve_conn_reset")
            with ServeClient(srv.socket_path, retries=0) as client:
                with pytest.raises(Exception):
                    client.analyze(TWO_PROCS)
        finally:
            self._teardown(srv, thread)

    def test_idle_timeout_disconnects_stalled_client(self, tmp_path):
        srv, thread = self._server(tmp_path, idle_timeout=0.5)
        try:
            stalled = socketlib.socket(socketlib.AF_UNIX,
                                       socketlib.SOCK_STREAM)
            try:
                stalled.connect(srv.socket_path)
                # Half a frame, then silence: the regression this PR
                # fixes left this handler blocked forever.
                stalled.sendall((64).to_bytes(4, "big") + b"par")
                stalled.settimeout(10.0)
                assert stalled.recv(1) == b""  # server hung up on us
            finally:
                stalled.close()
            assert srv.idle_closed >= 1
            # The daemon itself is fine.
            with ServeClient(srv.socket_path) as client:
                assert client.ping()["pong"]
                counters = client.stats()["counters"]
                assert counters["serve_idle_closed"] >= 1
        finally:
            self._teardown(srv, thread)

    def test_overload_sheds_and_retries_converge(self, tmp_path):
        srv, thread = self._server(tmp_path, workers=1, queue_depth=0)
        source = _slow_source()
        results, errors = [], []

        def one_client():
            try:
                with ServeClient(srv.socket_path, retries=20,
                                 timeout=120) as client:
                    results.append(client.analyze(source))
            except Exception as exc:  # noqa: BLE001 -- collected below
                errors.append(exc)

        try:
            threads = [threading.Thread(target=one_client)
                       for _ in range(4)]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=120)
            assert not errors
            assert len(results) == 4
            assert all(r["result"]["outcome"] == "ok" for r in results)
            # With one worker and no queue, concurrent clients MUST
            # have been shed at least once -- and their retries then
            # converged on the answer above.
            assert srv.errors_by_cause["overloaded"] >= 1
        finally:
            self._teardown(srv, thread)

    def test_overloaded_error_is_structured(self, tmp_path):
        srv, thread = self._server(tmp_path, workers=1, queue_depth=0)
        source = _slow_source()
        try:
            blocker = ServeClient(srv.socket_path, timeout=120)
            shed = ServeClient(srv.socket_path, retries=0)
            try:
                background = threading.Thread(
                    target=blocker.analyze, args=(source,), daemon=True)
                background.start()
                deadline = time.monotonic() + 30
                caught = None
                while time.monotonic() < deadline and caught is None:
                    try:
                        shed.analyze(TWO_PROCS)
                        time.sleep(0.01)  # blocker not admitted yet
                    except ServeError as exc:
                        caught = exc
                assert caught is not None, "no shed observed"
                assert caught.code == "overloaded"
                assert caught.retry_after_ms >= 50
                background.join(timeout=60)
            finally:
                blocker.close()
                shed.close()
        finally:
            self._teardown(srv, thread)


# ----------------------------------------------------------------------
# process level: real signals, real subprocesses
# ----------------------------------------------------------------------
@pytest.mark.slow
class TestServeProcessChaos:
    def _spawn(self, tmp_path, *extra, name="serve.sock"):
        sock = tmp_path / name
        env = dict(os.environ)
        env["REPRO_CACHE_DIR"] = str(tmp_path / "cache")
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve",
             "--socket", str(sock), *extra],
            stdout=subprocess.DEVNULL, stderr=subprocess.PIPE,
            text=True, env=env)
        return proc, sock

    def test_sigterm_drains_inflight_request(self, tmp_path):
        proc, sock = self._spawn(tmp_path, "--pool", "2", "--workers", "2")
        wait_ready(str(sock), timeout=30)
        source = _slow_source(nvars=170)
        box = {}

        def run_request():
            with ServeClient(str(sock), timeout=120, retries=0) as client:
                box["response"] = client.analyze(source)

        requester = threading.Thread(target=run_request)
        requester.start()
        time.sleep(0.4)  # let the request be admitted and dispatched
        os.kill(proc.pid, signal.SIGTERM)
        requester.join(timeout=120)
        assert not requester.is_alive()
        # The drain let the in-flight analysis finish and the reply
        # reach the client before the process exited.
        assert box["response"]["ok"]
        assert box["response"]["result"]["outcome"] == "ok"
        assert proc.wait(timeout=60) == 0
        proc.stderr.close()
        assert not sock.exists()
        assert _shm_entries() == []

    def test_startup_race_resolves_to_one_server(self, tmp_path):
        a, sock = self._spawn(tmp_path)
        b, _ = self._spawn(tmp_path)
        survivor = loser = None
        try:
            deadline = time.monotonic() + 30
            while time.monotonic() < deadline:
                done = [p for p in (a, b) if p.poll() is not None]
                if done:
                    loser = done[0]
                    survivor = b if loser is a else a
                    break
                time.sleep(0.05)
            assert loser is not None, "neither server gave way"
            assert loser.returncode == 2
            assert "another server is live" in loser.stderr.read()
            # Exactly one server remains, and it works.
            assert survivor.poll() is None
            wait_ready(str(sock), timeout=30)
            os.kill(survivor.pid, signal.SIGTERM)
            assert survivor.wait(timeout=60) == 0
        finally:
            for p in (a, b):
                if p.poll() is None:
                    p.kill()
                    p.wait()
                p.stderr.close()
        assert not sock.exists()
        assert _shm_entries() == []
