"""Tests for backward assignment (substitution) and backward analysis."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import INF, LinExpr, Octagon, OctConstraint
from repro.frontend.ast_nodes import Cmp, Num, Var


class TestSubstitution:
    def test_substitute_const(self):
        # post: x in [0, 5].  pre of x := 3 is top (3 lands inside).
        post = Octagon.from_box([(0.0, 5.0)])
        pre = post.substitute_const(0, 3.0)
        assert pre.is_top()

    def test_substitute_const_unreachable(self):
        post = Octagon.from_box([(0.0, 5.0)])
        pre = post.substitute_const(0, 9.0)
        assert pre.is_bottom()

    def test_substitute_translation(self):
        # post: x in [0, 5].  pre of x := x + 2 is x in [-2, 3].
        post = Octagon.from_box([(0.0, 5.0)])
        pre = post.substitute_linexpr(0, LinExpr({0: 1.0}, 2.0))
        assert pre.bounds(0) == (-2.0, 3.0)

    def test_substitute_other_var(self):
        # post: x in [0, 5], pre of x := y constrains y, frees x.
        post = Octagon.from_box([(0.0, 5.0), (-INF, INF)])
        pre = post.substitute_var(0, 1)
        assert pre.bounds(1) == (0.0, 5.0)
        assert pre.bounds(0) == (-INF, INF)

    def test_substitute_preserves_relations(self):
        # post: x = z.  pre of x := y + 1 is y + 1 = z, i.e. z - y = 1.
        post = Octagon.from_constraints(3, [OctConstraint.diff(0, 2, 0.0),
                                            OctConstraint.diff(2, 0, 0.0)])
        pre = post.substitute_var(0, 1, offset=1.0)
        lo, hi = pre.bound_linexpr(LinExpr({2: 1.0, 1: -1.0}))
        assert (lo, hi) == (1.0, 1.0)

    def test_substitute_on_bottom(self):
        assert Octagon.bottom(2).substitute_const(0, 1.0).is_bottom()

    @settings(max_examples=40, deadline=None)
    @given(st.integers(0, 2), st.integers(-3, 3),
           st.dictionaries(st.integers(0, 2), st.sampled_from([-1.0, 1.0, 2.0]),
                           max_size=2))
    def test_substitution_soundness(self, v, const, coeffs):
        """If running v := e from a point lands in post, the point must
        be in the computed precondition."""
        expr = LinExpr(dict(coeffs), float(const))
        post = Octagon.from_box([(-4.0, 4.0)] * 3)
        pre = post.substitute_linexpr(v, expr)
        rng = np.random.default_rng(5)
        for _ in range(25):
            pt = rng.uniform(-6, 6, 3)
            out = pt.copy()
            out[v] = expr.evaluate(pt)
            if post.contains_point(out):
                assert pre.contains_point(pt), (pt, out)

    @settings(max_examples=30, deadline=None)
    @given(st.integers(0, 2), st.integers(0, 2), st.sampled_from([-1, 1]),
           st.integers(-3, 3))
    def test_adjunction_with_assignment(self, v, w, coeff, off):
        """assign(pre) stays inside post when pre = substitute(post)."""
        post = Octagon.from_box([(-4.0, 4.0)] * 3)
        pre = post.substitute_var(v, w, coeff=coeff, offset=float(off))
        if pre.is_bottom():
            return
        fwd = pre.assign_var(v, w, coeff=coeff, offset=float(off))
        assert fwd.is_leq(post)


class TestBackwardAnalysis:
    def test_straight_line_precondition(self):
        from repro.analysis.backward import necessary_precondition
        pre = necessary_precondition(
            "y = x + 1;", Cmp(">=", Var("y"), Num(10.0)))
        # y = x + 1 >= 10 requires x >= 9 (variable order: y, x).
        assert pre.bounds(1)[0] == 9.0

    def test_branch_join(self):
        from repro.analysis.backward import necessary_precondition
        src = "havoc(c); if (c > 0) { y = x + 1; } else { y = x - 1; }"
        pre = necessary_precondition(src, Cmp(">=", Var("y"), Num(10.0)))
        # Weakest branch needs x >= 9; the join gives x >= 9.
        x_index = 2  # variable order: c, y, x
        assert pre.bounds(x_index)[0] == 9.0

    def test_unreachable_condition_gives_bottom(self):
        from repro.analysis.backward import necessary_precondition
        pre = necessary_precondition(
            "x = [0, 5]; y = x;", Cmp(">", Var("y"), Num(100.0)))
        assert pre.is_bottom()

    def test_guard_meets(self):
        from repro.analysis.backward import necessary_precondition
        src = "assume(x <= 3); y = x;"
        pre = necessary_precondition(src, Cmp(">=", Var("y"), Num(2.0)))
        assert pre.bounds(0) == (2.0, 3.0)

    def test_loop_converges(self):
        from repro.analysis.backward import necessary_precondition
        src = "while (x < 10) { x = x + 1; }"
        pre = necessary_precondition(src, Cmp(">=", Var("x"), Num(10.0)))
        # Any starting x may eventually reach x >= 10.
        assert not pre.is_bottom()

    def test_havoc_erases_requirement(self):
        from repro.analysis.backward import necessary_precondition
        pre = necessary_precondition(
            "havoc(y);", Cmp(">=", Var("y"), Num(10.0)))
        assert pre.is_top()
