"""Unit and property tests for half-matrix index arithmetic."""

from hypothesis import given
from hypothesis import strategies as st

from repro.core.indexing import (
    bar,
    cap,
    expand_vars,
    full_dim,
    half_size,
    in_lower,
    iter_half,
    matpos,
    matpos2,
    var_minus,
    var_of_index,
    var_plus,
)

dims = st.integers(min_value=1, max_value=40)


class TestBasics:
    def test_bar_is_involution(self):
        for i in range(64):
            assert bar(bar(i)) == i
            assert bar(i) in (i - 1, i + 1)

    def test_cap(self):
        assert cap(0) == 1
        assert cap(1) == 1
        assert cap(6) == 7
        assert cap(7) == 7

    @given(dims)
    def test_sizes(self, n):
        assert half_size(n) == 2 * n * n + 2 * n
        assert full_dim(n) == 2 * n

    def test_var_index_maps(self):
        assert var_plus(3) == 6
        assert var_minus(3) == 7
        assert var_of_index(6) == 3
        assert var_of_index(7) == 3

    def test_expand_vars(self):
        assert expand_vars([1, 3]) == [2, 3, 6, 7]
        assert expand_vars([]) == []


class TestMatpos:
    @given(dims)
    def test_offsets_are_a_bijection_on_the_half(self, n):
        seen = set()
        for i, j in iter_half(n):
            p = matpos(i, j)
            assert 0 <= p < half_size(n)
            assert p not in seen
            seen.add(p)
        assert len(seen) == half_size(n)

    @given(dims, st.data())
    def test_matpos2_redirects_through_coherence(self, n, data):
        dim = 2 * n
        i = data.draw(st.integers(0, dim - 1))
        j = data.draw(st.integers(0, dim - 1))
        p = matpos2(i, j)
        q = matpos2(j ^ 1, i ^ 1)
        if i == j:
            # Diagonal entries are the one exception: O[2k,2k] and its
            # coherent duplicate O[2k+1,2k+1] occupy two distinct slots
            # (both trivially zero).
            assert q == matpos2(i ^ 1, i ^ 1)
        else:
            # Every off-diagonal entry shares its slot with its mirror.
            assert p == q

    def test_in_lower(self):
        assert in_lower(0, 0)
        assert in_lower(0, 1)  # j <= i|1
        assert not in_lower(0, 2)
        assert in_lower(5, 5)
        assert in_lower(4, 5)
        assert not in_lower(4, 6)

    @given(dims)
    def test_iter_half_matches_in_lower(self, n):
        from_iter = set(iter_half(n))
        explicit = {(i, j) for i in range(2 * n) for j in range(2 * n)
                    if in_lower(i, j)}
        assert from_iter == explicit
