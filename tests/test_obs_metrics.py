"""Tests for the unified metrics registry and its exporters."""

import json
import math

import pytest

from repro.obs import metrics
from repro.obs.metrics import (
    HistogramData,
    MetricsRegistry,
    histogram_key,
    merge_histogram_dicts,
    metrics_jsonl,
    prometheus_text,
    validate_prometheus_text,
)


class TestRegistry:
    def test_declaration_is_idempotent(self):
        reg = MetricsRegistry()
        a = reg.counter("hits", "cache hits")
        b = reg.counter("hits", "other help text")
        assert a is b
        assert len(reg.specs()) == 1

    def test_kind_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(ValueError):
            reg.gauge("x")

    def test_summary_zero_fills_and_derives(self):
        reg = MetricsRegistry()
        reg.counter("clones")
        reg.counter("copies")
        reg.counter("avoided",
                    derive=lambda m: m.get("clones", 0) - m.get("copies", 0))
        summary = reg.counter_summary({"clones": 5, "copies": 2})
        assert summary["clones"] == 5
        assert summary["avoided"] == 3
        # Declared but never observed: present as zero.
        empty = reg.counter_summary({})
        assert empty == {"clones": 0, "copies": 0, "avoided": 0}

    def test_summary_passes_through_undeclared(self):
        reg = MetricsRegistry()
        reg.counter("known")
        summary = reg.counter_summary({"surprise": 7})
        assert summary["surprise"] == 7

    def test_global_registry_has_all_legacy_names(self):
        """The registry-driven key set is a superset of the old
        hand-maintained ``counter_summary`` dictionary."""
        metrics.ensure_registered()
        names = set(metrics.REGISTRY.counter_names())
        legacy = {
            "copies_avoided", "cow_clones", "cow_materializations",
            "workspace_hits", "workspace_misses", "closure_cache_hits",
            "plans_compiled", "plan_exec", "constraints_batched",
            "closures_avoided", "budget_checkpoints", "budget_interrupts",
            "paranoid_checks", "integrity_failures", "degradations",
            "faults_injected", "result_cache_hits", "result_cache_misses",
            "result_cache_evictions", "journal_records",
            "journal_torn_lines",
        }
        assert legacy <= names

    def test_histogram_declarations_present(self):
        metrics.ensure_registered()
        from repro.obs import collect  # noqa: F401  (declares histograms)
        for name in ("closure_size", "closure_seconds", "op_seconds"):
            spec = metrics.REGISTRY.get(name)
            assert spec is not None and spec.kind == metrics.HISTOGRAM


class TestHistogramData:
    def test_observe_buckets(self):
        h = HistogramData("lat", (0.1, 1.0, 10.0))
        for v in (0.05, 0.5, 5.0, 50.0):
            h.observe(v)
        assert h.counts == [1, 1, 1, 1]
        assert h.total == 4
        assert h.sum == pytest.approx(55.55)

    def test_boundary_lands_in_its_bucket(self):
        h = HistogramData("lat", (1.0, 2.0))
        h.observe(1.0)  # le=1.0 bucket (cumulative semantics)
        assert h.counts == [1, 0, 0]

    def test_merge_and_dict_roundtrip(self):
        a = HistogramData("lat", (1.0, 2.0), "join")
        b = HistogramData("lat", (1.0, 2.0), "join")
        a.observe(0.5)
        b.observe(1.5)
        b.observe(9.0)
        a.merge(b)
        back = HistogramData.from_dict(json.loads(json.dumps(a.to_dict())))
        assert back.counts == a.counts
        assert back.total == 3
        assert back.label_value == "join"

    def test_merge_rejects_bucket_mismatch(self):
        a = HistogramData("lat", (1.0,))
        b = HistogramData("lat", (2.0,))
        with pytest.raises(ValueError):
            a.merge(b)

    def test_merge_histogram_dicts(self):
        a = HistogramData("op_seconds", (1.0,), "join")
        a.observe(0.5)
        key = histogram_key("op_seconds", "join")
        merged = merge_histogram_dicts([{key: a.to_dict()},
                                        {key: a.to_dict()}])
        assert merged[key].total == 2

    def test_histogram_key(self):
        assert histogram_key("x") == "x"
        assert histogram_key("x", "join") == "x|join"


class TestPrometheusExport:
    def _snapshot(self):
        h = HistogramData("op_seconds", (0.001, 0.1), "join")
        h.observe(0.0005)
        h.observe(0.05)
        h.observe(2.0)
        return ({"cow_clones": 12, "copies_avoided": 3},
                {histogram_key("op_seconds", "join"): h})

    def test_exposition_validates(self):
        counters, histograms = self._snapshot()
        text = prometheus_text(counters, histograms)
        assert validate_prometheus_text(text) > 0
        assert "repro_cow_clones_total 12" in text
        assert 'le="+Inf"' in text

    def test_buckets_are_cumulative(self):
        _, histograms = self._snapshot()
        text = prometheus_text({}, histograms)
        lines = [l for l in text.splitlines() if "_bucket" in l]
        counts = [int(l.rsplit(" ", 1)[1]) for l in lines]
        assert counts == sorted(counts)
        assert counts[-1] == 3
        assert "repro_op_seconds_count" in text
        assert 'op="join"' in text

    def test_validator_rejects_garbage(self):
        with pytest.raises(ValueError):
            validate_prometheus_text("this is { not metrics\n")
        with pytest.raises(ValueError):
            validate_prometheus_text("")  # no samples

    def test_help_lines_from_registry(self):
        metrics.ensure_registered()
        text = prometheus_text({"cow_clones": 1})
        assert "# HELP repro_cow_clones_total" in text


class TestJsonlExport:
    def test_every_line_parses(self):
        counters, histograms = ({"hits": 2}, {})
        h = HistogramData("op_seconds", (1.0,), "join")
        h.observe(0.5)
        histograms[histogram_key("op_seconds", "join")] = h
        text = metrics_jsonl(counters, histograms, run_id="r1")
        lines = [json.loads(l) for l in text.splitlines()]
        assert len(lines) == 2
        assert all(l["run"] == "r1" for l in lines)
        kinds = {l["kind"] for l in lines}
        assert kinds == {"counter", "histogram"}


class TestEnabledFlag:
    def test_set_enabled_returns_previous(self):
        previous = metrics.set_enabled(True)
        try:
            assert metrics.enabled()
            assert metrics.set_enabled(False) is True
            assert not metrics.enabled()
        finally:
            metrics.set_enabled(previous)

    def test_collector_histograms_gated(self):
        from repro.core.stats import collecting
        previous = metrics.set_enabled(False)
        try:
            with collecting() as off:
                off.record_op("join", 0.01)
            assert off.histograms == {}
            metrics.set_enabled(True)
            with collecting() as on:
                on.record_op("join", 0.01)
            key = histogram_key("op_seconds", "join")
            assert on.histograms[key].total == 1
        finally:
            metrics.set_enabled(previous)
