"""Property tests: monotonicity of the abstract transformers.

Abstract interpretation's soundness argument leans on transformers
being monotone: ``S1 <= S2  ==>  f(S1) <= f(S2)``.  We check this for
the octagon's transfer functions and lattice operators over random
ordered pairs (built as ``S`` and ``S`` meet extra constraints, so the
order holds by construction), plus the soundness conditions of the
threshold widening.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from dbm_strategies import dbm_entries, make_coherent_dbm
from repro.core import INF, LinExpr, Octagon, OctConstraint

SET = settings(max_examples=40, deadline=None)


@st.composite
def ordered_pairs(draw, n=3):
    """Two octagons with ``small <= big`` by construction."""
    big = Octagon.from_matrix(make_coherent_dbm(n, draw(dbm_entries(n, 12))))
    small = big
    for _ in range(draw(st.integers(1, 4))):
        v = draw(st.integers(0, n - 1))
        w = draw(st.integers(0, n - 1))
        c = float(draw(st.integers(-4, 8)))
        if v == w:
            cons = (OctConstraint.upper(v, c) if draw(st.booleans())
                    else OctConstraint.lower(v, c))
        else:
            cons = OctConstraint(v, draw(st.sampled_from([-1, 1])),
                                 w, draw(st.sampled_from([-1, 1])), c)
        small = small.meet_constraint(cons)
    return small, big


@st.composite
def linexprs(draw, n=3):
    coeffs = draw(st.dictionaries(st.integers(0, n - 1),
                                  st.sampled_from([-1.0, 1.0, 2.0]),
                                  max_size=2))
    return LinExpr(coeffs, float(draw(st.integers(-4, 4))))


class TestMonotonicity:
    @SET
    @given(ordered_pairs(), st.integers(0, 2), linexprs())
    def test_assign_monotone(self, pair, v, expr):
        small, big = pair
        assert small.assign_linexpr(v, expr).is_leq(big.assign_linexpr(v, expr))

    @SET
    @given(ordered_pairs(), linexprs())
    def test_assume_monotone(self, pair, expr):
        small, big = pair
        assert small.assume_linear(expr).is_leq(big.assume_linear(expr))

    @SET
    @given(ordered_pairs(), st.integers(0, 2))
    def test_forget_monotone(self, pair, v):
        small, big = pair
        assert small.forget(v).is_leq(big.forget(v))

    @SET
    @given(ordered_pairs(), st.integers(0, 2), linexprs())
    def test_substitute_monotone(self, pair, v, expr):
        small, big = pair
        assert small.substitute_linexpr(v, expr).is_leq(
            big.substitute_linexpr(v, expr))

    @SET
    @given(ordered_pairs(), ordered_pairs())
    def test_join_meet_monotone(self, pair_a, pair_b):
        sa, ba = pair_a
        sb, bb = pair_b
        assert sa.join(sb).is_leq(ba.join(bb))
        assert sa.meet(sb).is_leq(ba.meet(bb))

    @SET
    @given(ordered_pairs())
    def test_closure_monotone(self, pair):
        small, big = pair
        assert small.closure().is_leq(big.closure())


class TestWideningThresholds:
    @SET
    @given(ordered_pairs(), st.lists(st.integers(-5, 40).map(float),
                                     min_size=1, max_size=4, unique=True))
    def test_covers_join(self, pair, thresholds):
        a, b = pair  # a <= b
        w = b.widening_thresholds(a, sorted(thresholds))
        assert b.join(a).is_leq(w)

    def test_bounds_land_on_thresholds(self):
        prev = Octagon.from_box([(0.0, 2.0)])
        nxt = Octagon.from_box([(0.0, 3.0)])
        w = prev.widening_thresholds(nxt, [10.0, 50.0])
        # 2*hi grows 4 -> 6; the next threshold is 10 -> hi = 5.
        assert w.bounds(0)[1] == 5.0

    def test_exhausted_thresholds_go_to_infinity(self):
        prev = Octagon.from_box([(0.0, 2.0)])
        nxt = Octagon.from_box([(0.0, 100.0)])
        w = prev.widening_thresholds(nxt, [10.0])
        assert w.bounds(0)[1] == INF

    def test_terminates_on_increasing_chain(self):
        state = Octagon.from_box([(0.0, 0.0)])
        ts = [8.0, 64.0, 512.0]
        changes = 0
        for k in range(1, 2000):
            nxt = Octagon.from_box([(0.0, float(k))])
            merged = state.join(nxt)
            if merged.is_leq(state):
                continue
            state = state.widening_thresholds(merged, ts)
            changes += 1
        # One change per threshold level plus the final jump to inf.
        assert changes <= len(ts) + 1


class TestNarrowing:
    @SET
    @given(ordered_pairs())
    def test_narrowing_brackets(self, pair):
        small, big = pair
        nr = big.narrowing(small)
        assert small.is_leq(nr)
        assert nr.is_leq(big)

    def test_narrowing_chain_terminates(self):
        """Iterated narrowing against a fixed refinement stabilises."""
        state = Octagon.top(1)
        target = Octagon.from_box([(0.0, 5.0)])
        steps = 0
        while True:
            nxt = state.narrowing(target)
            if nxt.is_eq(state):
                break
            state = nxt
            steps += 1
            assert steps < 10
        assert state.bounds(0) == (0.0, 5.0)
