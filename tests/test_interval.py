"""Tests for the Interval (box) domain."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import INF
from repro.core.constraints import LinExpr, OctConstraint
from repro.domains import Interval


@st.composite
def boxes(draw, n=3):
    kind = draw(st.integers(0, 5))
    if kind == 0:
        return Interval.top(n)
    if kind == 1:
        return Interval.bottom(n)
    bounds = []
    for _ in range(n):
        lo = draw(st.one_of(st.just(-INF), st.integers(-10, 10).map(float)))
        width = draw(st.one_of(st.just(INF), st.integers(0, 10).map(float)))
        hi = INF if (lo == -INF and width == INF) else (
            INF if width == INF else lo + width if lo != -INF else draw(
                st.integers(-10, 10).map(float)))
        bounds.append((lo, hi))
    return Interval.from_box(bounds)


SET = settings(max_examples=50, deadline=None)


class TestBasics:
    def test_top_bottom(self):
        assert Interval.top(2).is_top()
        assert Interval.bottom(2).is_bottom()
        assert not Interval.top(2).is_bottom()

    def test_from_box_detects_empty(self):
        assert Interval.from_box([(1.0, 0.0)]).is_bottom()

    def test_bounds(self):
        b = Interval.from_box([(1.0, 2.0), (-INF, 0.0)])
        assert b.bounds(0) == (1.0, 2.0)
        assert b.bounds(1) == (-INF, 0.0)

    def test_close_is_noop(self):
        b = Interval.top(1)
        assert b.close() is b


class TestLattice:
    @SET
    @given(boxes(), boxes())
    def test_join_upper_bound(self, a, b):
        j = a.join(b)
        assert a.is_leq(j) and b.is_leq(j)

    @SET
    @given(boxes(), boxes())
    def test_meet_lower_bound(self, a, b):
        m = a.meet(b)
        assert m.is_leq(a) and m.is_leq(b)

    @SET
    @given(boxes(), boxes())
    def test_widening_covers_join(self, a, b):
        assert a.join(b).is_leq(a.widening(b))

    @SET
    @given(boxes())
    def test_eq_reflexive(self, a):
        assert a.is_eq(a.copy())

    def test_widening_blows_unstable_bounds(self):
        a = Interval.from_box([(0.0, 1.0)])
        b = Interval.from_box([(0.0, 2.0)])
        w = a.widening(b)
        assert w.bounds(0) == (0.0, INF)

    def test_narrowing_refines_infinite(self):
        a = Interval.from_box([(0.0, INF)])
        b = Interval.from_box([(0.0, 5.0)])
        assert a.narrowing(b).bounds(0) == (0.0, 5.0)


class TestTransfer:
    def test_assign_linexpr(self):
        b = Interval.from_box([(1.0, 2.0), (0.0, 0.0)])
        b = b.assign_linexpr(1, LinExpr({0: 2.0}, 1.0))
        assert b.bounds(1) == (3.0, 5.0)

    def test_assume_linear_tightens(self):
        b = Interval.from_box([(0.0, 10.0)]).assume_linear(LinExpr({0: 1.0}, -4.0))
        assert b.bounds(0) == (0.0, 4.0)

    def test_assume_with_negative_coeff(self):
        b = Interval.from_box([(0.0, 10.0)]).assume_linear(LinExpr({0: -1.0}, 3.0))
        # -x + 3 <= 0  =>  x >= 3.
        assert b.bounds(0) == (3.0, 10.0)

    def test_assume_contradiction(self):
        b = Interval.from_box([(5.0, 6.0)]).assume_linear(LinExpr({0: 1.0}, 0.0))
        assert b.is_bottom()

    def test_assume_constant_false(self):
        assert Interval.top(1).assume_linear(LinExpr({}, 2.0)).is_bottom()

    def test_meet_constraint_binary(self):
        b = Interval.from_box([(0.0, 10.0), (0.0, 3.0)])
        b = b.meet_constraint(OctConstraint.sum(0, 1, 5.0))
        assert b.bounds(0) == (0.0, 5.0)  # x <= 5 - y <= 5

    def test_forget(self):
        b = Interval.from_box([(1.0, 2.0)]).forget(0)
        assert b.bounds(0) == (-INF, INF)

    def test_contains_point(self):
        b = Interval.from_box([(0.0, 1.0), (2.0, 3.0)])
        assert b.contains_point([0.5, 2.5])
        assert not b.contains_point([0.5, 4.0])


class TestPrecisionVsOctagon:
    def test_box_loses_relational_info(self):
        """The motivating contrast: octagons track x <= y, boxes cannot."""
        from repro.core import Octagon
        oct_ = Octagon.from_box([(0.0, 10.0), (0.0, 10.0)]).assume_linear(
            LinExpr({0: 1.0, 1: -1.0}))
        box = Interval.from_box([(0.0, 10.0), (0.0, 10.0)]).assume_linear(
            LinExpr({0: 1.0, 1: -1.0}))
        # After y := y - 5 both domains update y; only the octagon still
        # knows x - y <= 5.
        oct_ = oct_.assign_linexpr(1, LinExpr({1: 1.0}, -5.0))
        box = box.assign_linexpr(1, LinExpr({1: 1.0}, -5.0))
        lo_oct, hi_oct = oct_.bound_linexpr(LinExpr({0: 1.0, 1: -1.0}))
        lo_box, hi_box = box.bound_linexpr(LinExpr({0: 1.0, 1: -1.0}))
        assert hi_oct == 5.0
        assert hi_box > hi_oct
