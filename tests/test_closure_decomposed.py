"""Tests specific to the decomposed closure: component-wise closure,
strengthening-induced merging, and the exact structural refresh."""

import numpy as np

from repro.core.closure_decomposed import (
    close_component,
    closure_decomposed,
    strengthen_and_merge,
    submatrix_sparsity,
)
from repro.core.closure_reference import closure_full_scalar
from repro.core.constraints import OctConstraint, dbm_cells
from repro.core.densemat import matrices_equal, new_top
from repro.core.partition import Partition


def _meet(m, cons):
    for r, s, c in dbm_cells(cons):
        m[r, s] = min(m[r, s], c)
        m[s ^ 1, r ^ 1] = m[r, s]


class TestComponentClosure:
    def test_shortest_path_cannot_merge_components(self):
        """Variables in different components stay unrelated after the
        shortest-path step (the paper's key decomposition argument)."""
        m = new_top(4)
        _meet(m, OctConstraint.diff(0, 1, 2.0))
        _meet(m, OctConstraint.diff(2, 3, 5.0))
        part = Partition(4, [[0, 1], [2, 3]])
        empty, exact = closure_decomposed(m, part)
        assert not empty
        assert exact.canonical() == [[0, 1], [2, 3]]
        # No cross-component entry became finite.
        for i in (0, 1, 2, 3):
            for j in (4, 5, 6, 7):
                assert np.isinf(m[i, j])

    def test_strengthening_merges_on_unary_bounds(self):
        """x <= 1 (component {x}) and y <= 1 (component {y}) produce
        x + y <= 2 -- the components must merge."""
        m = new_top(2)
        _meet(m, OctConstraint.upper(0, 1.0))
        _meet(m, OctConstraint.upper(1, 1.0))
        part = Partition(2, [[0], [1]])
        empty, exact = closure_decomposed(m, part)
        assert not empty
        (r, s, _) = dbm_cells(OctConstraint.sum(0, 1, 0.0))[0]
        assert m[r, s] == 2.0
        assert exact.canonical() == [[0, 1]]

    def test_unpartitioned_variables_untouched(self):
        m = new_top(3)
        _meet(m, OctConstraint.diff(0, 2, 1.0))
        part = Partition(3, [[0, 2]])  # variable 1 unconstrained
        empty, exact = closure_decomposed(m, part)
        assert not empty
        assert 1 not in exact.support

    def test_bottom_inside_component(self):
        m = new_top(4)
        _meet(m, OctConstraint.upper(2, -1.0))
        _meet(m, OctConstraint.lower(2, 0.0))
        part = Partition(4, [[2], [0, 1]])
        empty, _ = closure_decomposed(m, part)
        assert empty


class TestHelpers:
    def test_submatrix_sparsity_range(self):
        top = new_top(3)
        # Only the 2n diagonal entries are finite: 1 - 6/24.
        assert submatrix_sparsity(top) == 0.75
        dense = np.zeros((6, 6))
        assert submatrix_sparsity(dense) == 0.0

    def test_close_component_is_local(self):
        m = new_top(4)
        _meet(m, OctConstraint.diff(0, 1, 1.0))
        _meet(m, OctConstraint.diff(1, 0, 1.0))
        before = m.copy()
        close_component(m, [0, 1])
        # Rows/cols of variables 2 and 3 untouched.
        assert np.array_equal(np.isinf(m[4:, :]), np.isinf(before[4:, :]))

    def test_strengthen_and_merge_without_unaries(self):
        m = new_top(4)
        _meet(m, OctConstraint.diff(0, 1, 1.0))
        part = Partition(4, [[0, 1], [2]])
        merged = strengthen_and_merge(m, part)
        assert merged == part  # at most one variable has unary info


class TestAgainstReference:
    def test_random_block_structures(self):
        rng = np.random.default_rng(11)
        for _ in range(25):
            n = int(rng.integers(2, 9))
            nblocks = int(rng.integers(1, 4))
            vars_ = list(range(n))
            rng.shuffle(vars_)
            blocks = [sorted(vars_[i::nblocks]) for i in range(nblocks)]
            blocks = [b for b in blocks if b]
            m = new_top(n)
            for block in blocks:
                idx = [2 * v + s for v in block for s in (0, 1)]
                for _ in range(3 * len(block)):
                    i, j = rng.choice(idx, 2)
                    if i != j:
                        c = float(rng.integers(-2, 15))
                        m[i, j] = min(m[i, j], c)
                        m[j ^ 1, i ^ 1] = m[i, j]
            ref = m.copy()
            empty_ref = closure_full_scalar(ref)
            out = m.copy()
            empty, _ = closure_decomposed(out, Partition(n, blocks))
            assert empty == empty_ref
            if not empty:
                assert matrices_equal(ref, out, tol=1e-9)
