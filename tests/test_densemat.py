"""Tests for the full coherent-DBM helpers."""

import numpy as np
from hypothesis import given

from dbm_strategies import coherent_dbms
from repro.core.bounds import INF
from repro.core.densemat import (
    coherent_lower_mask,
    count_nni,
    enforce_coherence,
    has_negative_cycle,
    is_coherent,
    matrices_equal,
    new_top,
    new_uninitialised,
    sparsity,
)
from repro.core.indexing import half_size


class TestConstruction:
    def test_new_top(self):
        m = new_top(3)
        assert m.shape == (6, 6)
        assert np.all(np.diagonal(m) == 0.0)
        assert np.isinf(m[0, 1])
        assert is_coherent(m)
        assert count_nni(m) == 6  # the diagonal

    def test_new_uninitialised_shape(self):
        m = new_uninitialised(4)
        assert m.shape == (8, 8)
        assert m.dtype == np.float64


class TestCoherence:
    @given(coherent_dbms())
    def test_generated_dbms_are_coherent(self, m):
        assert is_coherent(m)

    def test_detects_incoherence(self):
        m = new_top(2)
        m[0, 2] = 5.0  # mirror (3, 1) not updated
        assert not is_coherent(m)
        enforce_coherence(m)
        assert is_coherent(m)

    def test_lower_mask_size(self):
        for n in (1, 2, 5):
            mask = coherent_lower_mask(n)
            assert int(mask.sum()) == half_size(n)


class TestCounting:
    def test_count_nni_counts_half_only(self):
        m = new_top(2)
        m[1, 0] = 4.0
        m[0, 1] = 4.0  # the unary pair: two distinct half slots
        assert count_nni(m) == 4 + 2  # diagonal + two unary entries

    def test_sparsity_of_top(self):
        # Top has only the 2n diagonal entries finite out of 2n^2 + 2n.
        m = new_top(5)
        assert sparsity(m) == 1.0 - 10 / 60

    def test_sparsity_of_full(self):
        m = np.zeros((6, 6))
        assert sparsity(m) == 0.0


class TestComparison:
    @given(coherent_dbms())
    def test_equal_to_self(self, m):
        assert matrices_equal(m, m)
        assert matrices_equal(m, m.copy(), tol=1e-12)

    def test_tolerance(self):
        a = new_top(1)
        b = a.copy()
        a[1, 0] = 1.0
        b[1, 0] = 1.0 + 1e-12
        assert not matrices_equal(a, b)
        assert matrices_equal(a, b, tol=1e-9)

    def test_inf_pattern_must_match(self):
        a = new_top(1)
        b = a.copy()
        b[1, 0] = 5.0
        assert not matrices_equal(a, b, tol=100.0)


class TestNegativeCycle:
    def test_detects_negative_diagonal(self):
        m = new_top(2)
        assert not has_negative_cycle(m)
        m[2, 2] = -0.5
        assert has_negative_cycle(m)
