"""Control-flow graph construction tests."""

from repro.frontend import Assume, build_cfg, parse_program
from repro.frontend.ast_nodes import Assign


def cfg_of(source):
    return build_cfg(parse_program(source).procedures[0])


class TestStraightLine:
    def test_chain(self):
        cfg = cfg_of("x = 1; y = 2; z = 3;")
        assert cfg.n_nodes == 4
        assert len(cfg.edges) == 3
        assert cfg.entry == 0
        assert not cfg.loop_heads

    def test_skip_adds_nothing(self):
        cfg = cfg_of("skip; skip;")
        assert cfg.n_nodes == 1
        assert cfg.entry == cfg.exit


class TestBranches:
    def test_if_has_two_guard_edges(self):
        cfg = cfg_of("if (x < 1) { y = 1; } else { y = 2; }")
        guards = [e for e in cfg.edges if isinstance(e.action, Assume)]
        assert len(guards) == 2
        assert all(e.src == cfg.entry for e in guards)
        # Both arms merge at the exit.
        merge_preds = cfg.predecessors[cfg.exit]
        assert len(merge_preds) == 2

    def test_if_without_else(self):
        cfg = cfg_of("if (x < 1) { y = 1; }")
        merge_preds = cfg.predecessors[cfg.exit]
        assert len(merge_preds) == 2


class TestLoops:
    def test_while_structure(self):
        cfg = cfg_of("while (i < 3) { i = i + 1; }")
        assert len(cfg.loop_heads) == 1
        head = next(iter(cfg.loop_heads))
        out = cfg.successors[head]
        assert len(out) == 2  # enter body, exit loop
        # There is a back edge into the head.
        back = [e for e in cfg.edges if e.dst == head and e.src != cfg.entry]
        assert back

    def test_nested_loops(self):
        cfg = cfg_of("while (i < 3) { while (j < 3) { j = j + 1; } i = i + 1; }")
        assert len(cfg.loop_heads) == 2


class TestChecks:
    def test_assert_recorded_not_in_flow(self):
        cfg = cfg_of("x = 1; assert(x > 0); y = 2;")
        assert len(cfg.checks) == 1
        node, check = cfg.checks[0]
        # The assert sits between the two assignments.
        assign_edges = [e for e in cfg.edges if isinstance(e.action, Assign)]
        assert node == assign_edges[0].dst


class TestOrdering:
    def test_reverse_postorder_starts_at_entry(self):
        cfg = cfg_of("x = 1; while (x < 3) { x = x + 1; } y = x;")
        order = cfg.reverse_postorder()
        assert order[0] == cfg.entry
        assert sorted(order) == list(range(cfg.n_nodes))

    def test_rpo_places_loop_head_before_body(self):
        cfg = cfg_of("while (i < 3) { i = i + 1; }")
        order = cfg.reverse_postorder()
        head = next(iter(cfg.loop_heads))
        body_nodes = [e.dst for e in cfg.successors[head]
                      if isinstance(e.action, Assume)]
        assert order.index(head) < order.index(body_nodes[0])

    def test_deep_program_no_recursion_error(self):
        source = "".join(f"x = x + {i};\n" for i in range(3000))
        cfg = cfg_of(source)
        assert len(cfg.reverse_postorder()) == cfg.n_nodes


class TestEdgeDescriptions:
    def test_describe(self):
        cfg = cfg_of("x = 1;")
        assert cfg.edges[0].describe() == "x = 1"

    def test_var_index(self):
        cfg = cfg_of("b = 1; a = b;")
        assert cfg.var_index == {"b": 0, "a": 1}
