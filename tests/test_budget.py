"""Tests for cooperative budgets and their engine integration."""

import time

import pytest

from repro.core import stats
from repro.core.budget import Budget, active_budget, charge_cells, governed
from repro.errors import AnalysisInterrupted, BudgetExceeded, ReproError
from repro.analysis.analyzer import Analyzer
from repro.analysis.fixpoint import FixpointEngine
from repro.domains.domain import get_domain
from repro.frontend.cfg import build_cfg
from repro.frontend.parser import parse_program

LOOP_SOURCE = """
proc count {
  x = 0;
  while (x < 1000) { x = x + 1; }
  assert (x >= 1000);
}
"""


def _loop_cfg():
    return build_cfg(parse_program(LOOP_SOURCE).procedures[0])


class TestBudget:
    def test_unbounded_never_raises(self):
        b = Budget()
        assert not b.bounded
        for _ in range(1000):
            b.checkpoint()
            b.charge_cells(10**9)

    def test_iteration_cap(self):
        b = Budget(max_iterations=3)
        for _ in range(3):
            b.checkpoint()
        with pytest.raises(BudgetExceeded) as exc_info:
            b.checkpoint()
        assert exc_info.value.reason == "iterations"

    def test_cell_cap(self):
        b = Budget(max_cells=100)
        b.charge_cells(60)
        with pytest.raises(BudgetExceeded) as exc_info:
            b.charge_cells(60)
        assert exc_info.value.reason == "cells"
        assert exc_info.value.spent == 120

    def test_deadline(self):
        b = Budget(time_limit=0.01)
        time.sleep(0.02)
        with pytest.raises(BudgetExceeded) as exc_info:
            b.checkpoint()
        assert exc_info.value.reason == "deadline"

    def test_budget_exceeded_is_runtime_error(self):
        # Callers written against the old bare raises keep working.
        assert issubclass(BudgetExceeded, RuntimeError)
        assert issubclass(AnalysisInterrupted, RuntimeError)
        assert issubclass(BudgetExceeded, ReproError)

    def test_checkpoints_counted(self):
        with stats.collecting() as collector:
            b = Budget(max_iterations=100)
            for _ in range(5):
                b.checkpoint()
        assert collector.merged_counters()["budget_checkpoints"] >= 5


class TestAmbientBudget:
    def test_governed_scope_installs_and_restores(self):
        assert active_budget() is None
        b = Budget(max_cells=50)
        with governed(b):
            assert active_budget() is b
        assert active_budget() is None

    def test_governed_none_is_noop(self):
        with governed(None):
            assert active_budget() is None
            charge_cells(10**12)  # nothing to charge: must not raise

    def test_ambient_charge_reaches_budget(self):
        b = Budget(max_cells=10)
        with governed(b):
            with pytest.raises(BudgetExceeded):
                charge_cells(11)

    def test_nested_scopes_restore_outer(self):
        outer, inner = Budget(), Budget()
        with governed(outer):
            with governed(inner):
                assert active_budget() is inner
            assert active_budget() is outer


class TestEngineIntegration:
    def test_interrupt_carries_partial_states(self):
        engine = FixpointEngine()
        cfg = _loop_cfg()
        with pytest.raises(AnalysisInterrupted) as exc_info:
            engine.analyze(cfg, get_domain("octagon"),
                           budget=Budget(max_iterations=4))
        exc = exc_info.value
        assert exc.reason == "iterations"
        assert exc.iterations > 0
        assert isinstance(exc.partial_states, dict)
        assert set(exc.partial_states) == set(range(cfg.n_nodes))

    def test_max_iterations_backstop_still_runtime_error(self):
        engine = FixpointEngine(max_iterations=2)
        with pytest.raises(RuntimeError):
            engine.analyze(_loop_cfg(), get_domain("octagon"))

    def test_cell_budget_interrupts_octagon_closures(self):
        engine = FixpointEngine()
        with pytest.raises(AnalysisInterrupted) as exc_info:
            engine.analyze(_loop_cfg(), get_domain("octagon"),
                           budget=Budget(max_cells=5))
        assert exc_info.value.reason == "cells"

    def test_generous_budget_changes_nothing(self):
        engine = FixpointEngine()
        cfg = _loop_cfg()
        free = engine.analyze(cfg, get_domain("octagon"))
        governed_run = engine.analyze(cfg, get_domain("octagon"),
                                      budget=Budget(time_limit=3600.0,
                                                    max_iterations=10**9,
                                                    max_cells=10**15))
        for node in range(cfg.n_nodes):
            a, b = free.at(node), governed_run.at(node)
            assert a.is_leq(b) and b.is_leq(a)

    def test_analyzer_degrade_false_propagates(self):
        analyzer = Analyzer(iteration_budget=2, degrade=False)
        with pytest.raises(AnalysisInterrupted):
            analyzer.analyze(LOOP_SOURCE)

    def test_backward_budget(self):
        from repro.analysis.backward import BackwardEngine

        cfg = _loop_cfg()
        with pytest.raises(AnalysisInterrupted):
            BackwardEngine().analyze(cfg, get_domain("octagon"), cfg.exit,
                                     budget=Budget(max_iterations=1))
