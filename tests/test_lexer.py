"""Lexer tests."""

import pytest

from repro.frontend.lexer import LexError, Token, tokenize


def kinds_and_texts(source):
    return [(t.kind, t.text) for t in tokenize(source) if t.kind != "eof"]


class TestTokens:
    def test_simple_assignment(self):
        assert kinds_and_texts("x = 1;") == [
            ("ident", "x"), ("op", "="), ("num", "1"), ("op", ";")]

    def test_keywords_vs_idents(self):
        toks = kinds_and_texts("while whilex if iffy")
        assert toks == [("kw", "while"), ("ident", "whilex"),
                        ("kw", "if"), ("ident", "iffy")]

    def test_two_char_operators(self):
        toks = kinds_and_texts("a <= b >= c == d != e && f || g")
        ops = [t for k, t in toks if k == "op"]
        assert ops == ["<=", ">=", "==", "!=", "&&", "||"]

    def test_numbers(self):
        toks = kinds_and_texts("0 12 3.5 0.25")
        assert [t for _, t in toks] == ["0", "12", "3.5", "0.25"]

    def test_underscored_identifiers(self):
        assert kinds_and_texts("_x x_1")[0] == ("ident", "_x")

    def test_comments_stripped(self):
        toks = kinds_and_texts("x = 1; // the rest\n# also this\ny = 2;")
        assert ("ident", "y") in toks
        assert all("rest" not in t for _, t in toks)

    def test_positions(self):
        toks = tokenize("a\n  bb")
        assert (toks[0].line, toks[0].col) == (1, 1)
        assert (toks[1].line, toks[1].col) == (2, 3)

    def test_eof_token(self):
        assert tokenize("")[-1].kind == "eof"


class TestErrors:
    def test_unexpected_character(self):
        with pytest.raises(LexError) as exc:
            tokenize("x = $;")
        assert "line 1" in str(exc.value)

    def test_error_reports_position(self):
        with pytest.raises(LexError) as exc:
            tokenize("ok = 1;\n   @")
        assert exc.value.line == 2
