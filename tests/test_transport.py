"""Tests for the zero-copy worker-result transport.

Covers both lanes of the envelope (inline protocol-5 and shared
memory), the shm lifetime protocol (attach, immediate unlink, arena
release), the janitors, the ablation switch, and the end-to-end
property the module exists for: a parallel batch with
``keep_invariants`` ships its DBMs through shared memory, the arrays
arrive bit-identical to an inline run, and nothing is left in
``/dev/shm`` afterwards.
"""

import multiprocessing
import os

import numpy as np
import pytest

from repro.service import transport
from repro.service.job import AnalysisJob
from repro.service.scheduler import run_batch


def _shm_entries():
    try:
        return [e for e in os.listdir("/dev/shm")
                if e.startswith(transport.SHM_PREFIX)]
    except OSError:
        return []


def _round_trip(payload):
    """Ship ``payload`` through a real fork + pipe, like the scheduler."""
    ctx = multiprocessing.get_context("fork")
    recv_conn, send_conn = ctx.Pipe(duplex=False)

    def child(conn):
        transport.send_payload(conn, payload)
        conn.close()

    proc = ctx.Process(target=child, args=(send_conn,))
    proc.start()
    send_conn.close()
    try:
        result, arena = transport.recv_payload(recv_conn)
    finally:
        proc.join()
        recv_conn.close()
    return result, arena


class TestEnvelope:
    def test_small_payload_takes_inline_lane(self):
        before = transport.transport_counters()
        payload, arena = _round_trip({"answer": 42, "text": "ok"})
        after = transport.transport_counters()
        assert payload == {"answer": 42, "text": "ok"}
        assert arena is None
        assert after["bytes_shipped"] > before["bytes_shipped"]
        assert after["shm_blocks_created"] == before["shm_blocks_created"]

    def test_small_ndarray_stays_inline_but_round_trips(self):
        arr = np.arange(16, dtype=np.float64)
        payload, arena = _round_trip(("ok", arr))
        assert arena is None
        assert np.array_equal(payload[1], arr)

    def test_large_ndarray_takes_shm_lane(self):
        arr = np.arange(100_000, dtype=np.float64)  # 800 KB
        before = transport.transport_counters()
        payload, arena = _round_trip(("ok", {"mat": arr}))
        after = transport.transport_counters()
        assert np.array_equal(payload[1]["mat"], arr)
        assert arena is not None
        assert arena.nbytes >= arr.nbytes
        assert after["shm_blocks_created"] == before["shm_blocks_created"] + 1
        assert after["shm_blocks_attached"] == before["shm_blocks_attached"] + 1
        assert after["bytes_zero_copy"] - before["bytes_zero_copy"] >= arr.nbytes
        # The pipe carried only the body + envelope, not the array.
        assert after["bytes_shipped"] - before["bytes_shipped"] < arr.nbytes
        # Unlink-after-attach: the name is already gone, the data lives.
        assert _shm_entries() == []
        assert float(payload[1]["mat"][12345]) == 12345.0
        del payload
        arena.release()

    def test_zero_copy_disabled_forces_inline(self):
        arr = np.arange(100_000, dtype=np.float64)
        transport.set_zero_copy(False)
        try:
            before = transport.transport_counters()
            payload, arena = _round_trip(("ok", arr))
            after = transport.transport_counters()
        finally:
            transport.set_zero_copy(True)
        assert arena is None
        assert np.array_equal(payload[1], arr)
        assert after["shm_blocks_created"] == before["shm_blocks_created"]
        # The whole array crossed the pipe instead.
        assert after["bytes_shipped"] - before["bytes_shipped"] >= arr.nbytes

    def test_arena_release_tolerates_live_views(self):
        arr = np.arange(100_000, dtype=np.float64)
        payload, arena = _round_trip(("ok", arr))
        held = payload[1]  # keep a view alive across release()
        arena.release()  # BufferError path: must not raise
        assert float(held[7]) == 7.0


class TestJanitors:
    def _plant(self, parent_pid, worker_pid):
        from multiprocessing import resource_tracker, shared_memory

        seg = shared_memory.SharedMemory(
            name=transport.segment_name(parent_pid, worker_pid),
            create=True, size=128)
        resource_tracker.unregister(seg._name, "shared_memory")
        seg.close()
        return seg.name

    def test_sweep_worker_reclaims_dead_workers_segment(self):
        if not os.path.isdir("/dev/shm"):
            pytest.skip("no POSIX shm directory on this platform")
        self._plant(os.getpid(), 999_999)
        assert transport.sweep_worker(999_999) is True
        assert transport.sweep_worker(999_999) is False  # already gone
        assert _shm_entries() == []

    def test_sweep_orphans_reclaims_dead_parents_segments(self):
        if not os.path.isdir("/dev/shm"):
            pytest.skip("no POSIX shm directory on this platform")
        self._plant(999_998, 4_242)   # parent long dead
        self._plant(os.getpid(), 31_337)  # ours, no worker in flight
        assert transport.sweep_orphans() == 2
        assert _shm_entries() == []

    def test_sweep_orphans_spares_live_foreign_parents(self):
        if not os.path.isdir("/dev/shm"):
            pytest.skip("no POSIX shm directory on this platform")
        ctx = multiprocessing.get_context("fork")
        gate = ctx.Event()
        holder = ctx.Process(target=gate.wait)
        holder.start()
        try:
            name = self._plant(holder.pid, 1)
            assert transport.sweep_orphans() == 0
            assert name in _shm_entries()
        finally:
            gate.set()
            holder.join()
            transport._unlink_segment(name)
        assert _shm_entries() == []


SOURCES = {
    "a": "x = [0, 4]; y = x + 1; assert(y <= 5);",
    "b": "z = 3; w = z + 2; assert(w == 5);",
    "c": "i = 0; while (i < 9) { i = i + 1; } assert(i >= 9);",
}


class TestBatchTransport:
    def _jobs(self, **options):
        return [AnalysisJob(source=src, label=label, **options)
                for label, src in sorted(SOURCES.items())]

    def test_parallel_matches_inline_and_ships_dbms(self):
        inline = run_batch(self._jobs(keep_invariants=True), workers=1)
        parallel = run_batch(self._jobs(keep_invariants=True), workers=2)
        assert parallel.outcome_counts() == {"ok": 3}
        assert [r.verdicts() for r in parallel.results] \
            == [r.verdicts() for r in inline.results]
        for mine, ref in zip(parallel.results, inline.results):
            assert sorted(mine.dbms) == sorted(ref.dbms)
            for name, mat in mine.dbms.items():
                assert isinstance(mat, np.ndarray)
                assert mat.tobytes() == ref.dbms[name].tobytes()
        assert parallel.transport["bytes_shipped"] > 0
        assert _shm_entries() == []

    def test_zero_copy_reduces_bytes_shipped(self):
        """The ISSUE acceptance bar, counter-verified: the same batch
        ships fewer pipe bytes with the shm lane than without it."""
        jobs = self._jobs(keep_invariants=True)
        # A threshold of 0 routes every out-of-band buffer through shm,
        # so the comparison does not depend on DBM sizes vs the default.
        old_threshold = transport.SHM_THRESHOLD
        transport.SHM_THRESHOLD = 0
        try:
            with_shm = run_batch(jobs, workers=2)
            transport.set_zero_copy(False)
            try:
                without = run_batch(jobs, workers=2)
            finally:
                transport.set_zero_copy(True)
        finally:
            transport.SHM_THRESHOLD = old_threshold
        assert with_shm.transport["shm_blocks_attached"] > 0
        assert without.transport["shm_blocks_attached"] == 0
        assert with_shm.transport["bytes_zero_copy"] > 0
        assert with_shm.transport["bytes_shipped"] \
            < without.transport["bytes_shipped"]
        # Identical results either way, and no leaked segments.
        assert [r.verdicts() for r in with_shm.results] \
            == [r.verdicts() for r in without.results]
        assert _shm_entries() == []

    def test_batch_counters_surface_transport(self):
        batch = run_batch(self._jobs(), workers=2)
        counters = batch.counters()
        assert counters["bytes_shipped"] == batch.transport["bytes_shipped"]
        assert "bytes_zero_copy" in counters


class TestJobSubmissionLane:
    """Job submission rides the same envelope as results (ISSUE 7)."""

    def test_blob_round_trips_out_of_band(self):
        blob_in = transport._Blob(b"x" * 100)
        payload, arena = _round_trip(("job", blob_in))
        assert payload[1].bytes() == b"x" * 100
        assert arena is None  # 100 B stays inline, but still out-of-band

    def test_small_job_ships_inline_with_counter(self):
        jobs = [AnalysisJob(source=SOURCES["a"], label="small"),
                AnalysisJob(source=SOURCES["b"], label="small2")]
        before = transport.transport_counters()
        batch = run_batch(jobs, workers=2)
        after = transport.transport_counters()
        assert batch.all_ok
        assert after["job_bytes_shipped"] > before["job_bytes_shipped"]
        assert after["job_shm_blocks_created"] \
            == before["job_shm_blocks_created"]

    def test_large_job_source_rides_zero_copy(self):
        """The ISSUE counter assert: a large submitted source moves
        through shared memory, not the pipe, and leaks nothing."""
        # Padding is semantically inert (the lexer skips whitespace) but
        # counts for transport: the job is big, the analysis is tiny.
        pad = " " * (2 * transport.SHM_THRESHOLD)
        source = SOURCES["c"] + "\n" + pad
        jobs = [AnalysisJob(source=source, label="big"),
                AnalysisJob(source=SOURCES["b"], label="small")]
        before = transport.transport_counters()
        batch = run_batch(jobs, workers=2)
        after = transport.transport_counters()
        assert batch.all_ok
        delta_zero_copy = (after["job_bytes_zero_copy"]
                           - before["job_bytes_zero_copy"])
        delta_shipped = (after["job_bytes_shipped"]
                         - before["job_bytes_shipped"])
        assert after["job_shm_blocks_created"] \
            >= before["job_shm_blocks_created"] + 1
        assert delta_zero_copy >= len(pad)
        # The pipe carried only the envelope + stripped job, not the text.
        assert delta_shipped < len(source)
        assert _shm_entries() == []

    def test_submission_matches_inline_verdicts(self):
        pad = " " * (2 * transport.SHM_THRESHOLD)
        jobs = [AnalysisJob(source=src + "\n" + pad, label=label)
                for label, src in sorted(SOURCES.items())]
        inline = run_batch(jobs, workers=1)
        pooled = run_batch(jobs, workers=2)
        assert [r.verdicts() for r in pooled.results] \
            == [r.verdicts() for r in inline.results]
        assert pooled.outcome_counts() == {"ok": 3}
        assert _shm_entries() == []

    def test_sweep_worker_reclaims_job_segment(self):
        from multiprocessing import resource_tracker, shared_memory

        if not os.path.isdir("/dev/shm"):
            pytest.skip("no POSIX shm directory on this platform")
        seg = shared_memory.SharedMemory(
            name=transport.job_segment_name(os.getpid(), 999_999),
            create=True, size=64)
        resource_tracker.unregister(seg._name, "shared_memory")
        seg.close()
        assert transport.sweep_worker(999_999) is True
        assert _shm_entries() == []
