"""Tests for operation-trace recording and replay."""

import numpy as np
import pytest

from repro.analysis import FixpointEngine
from repro.core import ApronOctagon, LinExpr, Octagon, OctConstraint
from repro.domains import get_domain
from repro.frontend import build_cfg, parse_program
from repro.workloads.traces import (
    OpTrace,
    StateRef,
    TraceOp,
    TracingFactory,
    replay,
    tracing_factory,
)


def record_program(source, domain="octagon"):
    proc = parse_program(source).procedures[0]
    cfg = build_cfg(proc)
    factory = tracing_factory(get_domain(domain))
    fix = FixpointEngine().analyze(cfg, factory)
    return factory.trace, cfg, fix


class TestRecording:
    def test_manual_recording(self):
        factory = tracing_factory(get_domain("octagon"))
        a = factory.top(2)
        b = a.meet_constraint(OctConstraint.upper(0, 3.0))
        c = a.meet(b)
        trace = factory.trace
        assert trace.n == 2
        methods = [op.method for op in trace.ops]
        assert methods == ["top", "meet_constraint", "meet"]
        # The meet references both operand states.
        meet_op = trace.ops[-1]
        assert meet_op.target == a.sid
        assert meet_op.args == (StateRef(b.sid),)
        assert c.inner.bounds(0)[1] == 3.0

    def test_queries_recorded_without_result_state(self):
        factory = tracing_factory(get_domain("octagon"))
        a = factory.from_box([(0.0, 1.0)])
        assert a.is_bottom() is False
        assert a.bounds(0) == (0.0, 1.0)
        kinds = [(op.method, op.result) for op in factory.trace.ops]
        assert ("is_bottom", None) in kinds
        assert ("bounds", None) in kinds

    def test_analysis_records_trace(self):
        trace, _, _ = record_program(
            "x = 0; while (x < 5) { x = x + 1; }")
        methods = {op.method for op in trace.ops}
        assert "join" in methods and "widening" in methods
        assert len(trace) > 10


class TestSerialisation:
    def test_json_roundtrip(self):
        factory = tracing_factory(get_domain("octagon"))
        a = factory.top(3)
        b = a.assign_linexpr(0, LinExpr({1: 1.0, 2: -1.0}, 2.0))
        b.meet_constraint(OctConstraint.sum(0, 1, 9.0))
        text = factory.trace.to_json()
        back = OpTrace.from_json(text)
        assert len(back) == len(factory.trace)
        assert [op.method for op in back.ops] == \
            [op.method for op in factory.trace.ops]
        # Value arguments survive the round trip.
        lin_op = back.ops[1]
        (expr,) = lin_op.args[1:2] if len(lin_op.args) > 1 else (lin_op.args[0],)

    def test_constraint_arg_roundtrip(self):
        trace = OpTrace(n=2)
        cons = OctConstraint.diff(0, 1, 4.0)
        trace.ops.append(TraceOp(None, "meet_constraint", 0, (cons,)))
        back = OpTrace.from_json(trace.to_json())
        assert back.ops[0].args[0] == cons


class TestReplay:
    SRC = """
    x = [0, 8]; y = x; z = 0;
    while (z < 6) { z = z + 1; y = y + 1; }
    assert(y >= x);
    """

    def test_replay_reproduces_states(self):
        trace, cfg, fix = record_program(self.SRC)
        states = replay(trace, get_domain("octagon"))
        # The recorded final exit state appears among replayed states.
        exit_state = fix.at(cfg.exit).inner
        assert any(isinstance(s, Octagon) and not s.is_bottom()
                   and s.n == exit_state.n and s.is_eq(exit_state)
                   for s in states.values())

    def test_cross_domain_replay_agrees(self):
        """The differential oracle: a trace recorded on the optimised
        octagon replays on the APRON baseline to equal states."""
        trace, cfg, fix = record_program(self.SRC)
        opt_states = replay(trace, get_domain("octagon"))
        apron_states = replay(trace, get_domain("apron"))
        for sid, opt in opt_states.items():
            apron = apron_states[sid]
            if opt.is_bottom() or apron.is_bottom():
                assert opt.is_bottom() == apron.is_bottom()
                continue
            full = apron.closure().half.to_full()
            om = opt.closure().mat
            assert np.allclose(np.where(np.isinf(om), 1e300, om),
                               np.where(np.isinf(full), 1e300, full)), sid

    def test_replay_after_json(self):
        trace, cfg, fix = record_program("a = 1; b = a + 2;")
        back = OpTrace.from_json(trace.to_json())
        states = replay(back, get_domain("interval"))
        assert any(getattr(s, "n", 0) == 2 and not s.is_bottom()
                   and s.bounds(1) == (3.0, 3.0)
                   for s in states.values() if hasattr(s, "bounds"))

    def test_unknown_constructor_rejected(self):
        trace = OpTrace(n=1)
        trace.ops.append(TraceOp(0, "magic", -1, ()))
        with pytest.raises(ValueError):
            replay(trace, get_domain("octagon"))
