"""Tests for the analysis transfer functions (linearisation, interval
evaluation and condition refinement)."""

import pytest

from repro.core import INF, Octagon
from repro.core.constraints import LinExpr
from repro.domains import Interval
from repro.frontend.ast_nodes import (
    Assign, AssignInterval, Assume, BinOp, BoolLit, BoolOp, Cmp, Havoc,
    Neg, Not, Num, Var,
)
from repro.analysis.transfer import (
    apply_action,
    apply_assume,
    eval_interval,
    linearize,
)

VARS = {"x": 0, "y": 1, "z": 2}


class TestLinearize:
    def test_affine(self):
        e = BinOp("+", BinOp("*", Num(2.0), Var("x")), Num(3.0))
        lin = linearize(e, VARS)
        assert lin.coeffs == {0: 2.0} and lin.const == 3.0

    def test_subtraction_and_negation(self):
        e = BinOp("-", Var("x"), Neg(Var("y")))
        lin = linearize(e, VARS)
        assert lin.coeffs == {0: 1.0, 1: 1.0}

    def test_var_times_var_is_not_affine(self):
        e = BinOp("*", Var("x"), Var("y"))
        assert linearize(e, VARS) is None

    def test_const_times_expr(self):
        e = BinOp("*", BinOp("+", Var("x"), Num(1.0)), Num(3.0))
        lin = linearize(e, VARS)
        assert lin.coeffs == {0: 3.0} and lin.const == 3.0


class TestEvalInterval:
    BOUNDS = {0: (1.0, 2.0), 1: (-1.0, 3.0), 2: (-INF, INF)}

    def bounds(self, v):
        return self.BOUNDS[v]

    def test_product(self):
        e = BinOp("*", Var("x"), Var("y"))
        lo, hi = eval_interval(e, self.bounds, VARS)
        assert (lo, hi) == (-2.0, 6.0)

    def test_product_with_infinity(self):
        e = BinOp("*", Var("z"), Num(0.0))
        lo, hi = eval_interval(e, self.bounds, VARS)
        assert (lo, hi) == (0.0, 0.0)  # 0 * inf handled as 0

    def test_negation(self):
        lo, hi = eval_interval(Neg(Var("x")), self.bounds, VARS)
        assert (lo, hi) == (-2.0, -1.0)


class TestApplyAction:
    def test_affine_assign_is_relational(self):
        state = Octagon.from_box([(0.0, 5.0), (0.0, 0.0), (0.0, 0.0)])
        out = apply_action(state, Assign("y", BinOp("+", Var("x"), Num(1.0))), VARS)
        lo, hi = out.bound_linexpr(LinExpr({1: 1.0, 0: -1.0}))
        assert (lo, hi) == (1.0, 1.0)

    def test_nonlinear_assign_falls_back_to_interval(self):
        state = Octagon.from_box([(1.0, 2.0), (3.0, 4.0), (0.0, 0.0)])
        out = apply_action(state, Assign("z", BinOp("*", Var("x"), Var("y"))), VARS)
        assert out.bounds(2) == (3.0, 8.0)

    def test_interval_assign_and_havoc(self):
        state = Octagon.from_box([(0.0, 0.0), (0.0, 0.0), (0.0, 0.0)])
        out = apply_action(state, AssignInterval("x", -1.0, 1.0), VARS)
        assert out.bounds(0) == (-1.0, 1.0)
        out = apply_action(out, Havoc("x"), VARS)
        assert out.bounds(0) == (-INF, INF)

    def test_none_action_is_identity(self):
        state = Octagon.top(3)
        assert apply_action(state, None, VARS) is state


class TestApplyAssume:
    def state(self):
        return Octagon.from_box([(0.0, 10.0), (0.0, 10.0), (0.0, 10.0)])

    def test_comparison_operators(self):
        s = self.state()
        assert apply_assume(s, Cmp("<=", Var("x"), Num(4.0)), VARS).bounds(0) == (0.0, 4.0)
        assert apply_assume(s, Cmp("<", Var("x"), Num(4.0)), VARS).bounds(0) == (0.0, 3.0)
        assert apply_assume(s, Cmp(">=", Var("x"), Num(4.0)), VARS).bounds(0) == (4.0, 10.0)
        assert apply_assume(s, Cmp(">", Var("x"), Num(4.0)), VARS).bounds(0) == (5.0, 10.0)
        assert apply_assume(s, Cmp("==", Var("x"), Num(4.0)), VARS).bounds(0) == (4.0, 4.0)

    def test_real_mode_strict_is_nonstrict(self):
        s = self.state()
        out = apply_assume(s, Cmp("<", Var("x"), Num(4.0)), VARS, integer_mode=False)
        assert out.bounds(0) == (0.0, 4.0)

    def test_negation_flips(self):
        s = self.state()
        out = apply_assume(s, Not(Cmp("<=", Var("x"), Num(4.0))), VARS)
        assert out.bounds(0) == (5.0, 10.0)

    def test_conjunction(self):
        s = self.state()
        cond = BoolOp("&&", Cmp(">=", Var("x"), Num(2.0)),
                      Cmp("<=", Var("x"), Num(3.0)))
        assert apply_assume(s, cond, VARS).bounds(0) == (2.0, 3.0)

    def test_disjunction_joins(self):
        s = self.state()
        cond = BoolOp("||", Cmp("<=", Var("x"), Num(1.0)),
                      Cmp(">=", Var("x"), Num(9.0)))
        out = apply_assume(s, cond, VARS)
        assert out.bounds(0) == (0.0, 10.0)  # hull of the two sides

    def test_not_equal_on_boundary(self):
        s = Octagon.from_box([(0.0, 5.0)])
        out = apply_assume(s, Cmp("!=", Var("x"), Num(0.0)), {"x": 0})
        assert out.bounds(0) == (1.0, 5.0)

    def test_demorgan(self):
        s = self.state()
        cond = Not(BoolOp("||", Cmp("<", Var("x"), Num(2.0)),
                          Cmp(">", Var("x"), Num(7.0))))
        out = apply_assume(s, cond, VARS)
        assert out.bounds(0) == (2.0, 7.0)

    def test_bool_literals(self):
        s = self.state()
        assert apply_assume(s, BoolLit(True), VARS) is s
        assert apply_assume(s, BoolLit(False), VARS).is_bottom()

    def test_nonlinear_comparison_is_noop(self):
        s = self.state()
        cond = Cmp("<=", BinOp("*", Var("x"), Var("y")), Num(1.0))
        assert apply_assume(s, cond, VARS).is_eq(s)

    def test_works_on_interval_domain_too(self):
        s = Interval.from_box([(0.0, 10.0)])
        out = apply_assume(s, Cmp("<=", Var("x"), Num(4.0)), {"x": 0})
        assert out.bounds(0) == (0.0, 4.0)
